//! The "sense" phase: a compact snapshot of SoC status.
//!
//! Tracking the complete state of an SoC is intractable, so the paper's
//! software layer records only the variables shown to matter (Section 4.1):
//! the number of active accelerators, the coherence mode of each, and their
//! memory footprints — plus which memory partitions each active dataset maps
//! to, because contention is per-partition. [`SystemSnapshot`] is that
//! record, taken at the moment one particular accelerator is about to be
//! invoked (the *target* invocation).

use serde::{Deserialize, Serialize};

use crate::modes::CoherenceMode;
use crate::{AccelInstanceId, PartitionId};

/// The architecture constants the sense layer needs in order to discretize
/// footprints: private-cache and LLC-slice capacities and the number of
/// memory partitions. These mirror the per-SoC rows of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Capacity of one private (L2) cache in bytes.
    pub l2_bytes: u64,
    /// Capacity of one LLC partition (slice) in bytes.
    pub llc_slice_bytes: u64,
    /// Number of memory partitions (LLC slice + DRAM controller pairs).
    pub num_partitions: usize,
}

impl ArchParams {
    /// Convenience constructor.
    pub fn new(l2_bytes: u64, llc_slice_bytes: u64, num_partitions: usize) -> ArchParams {
        ArchParams {
            l2_bytes,
            llc_slice_bytes,
            num_partitions,
        }
    }

    /// Aggregate LLC capacity across all partitions.
    pub fn llc_total_bytes(&self) -> u64 {
        self.llc_slice_bytes * self.num_partitions as u64
    }
}

/// One currently-active accelerator invocation, as recorded by the status
/// tracker when the accelerator was started.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveAccel {
    /// Which accelerator tile is running.
    pub instance: AccelInstanceId,
    /// The coherence mode it was started with.
    pub mode: CoherenceMode,
    /// Memory footprint (workload size) of its invocation, in bytes.
    pub footprint_bytes: u64,
    /// The memory partitions its dataset maps to. The footprint is assumed
    /// to be spread evenly across them (ESP allocates datasets in contiguous
    /// big pages, so this is typically a single partition).
    pub partitions: Vec<PartitionId>,
}

impl ActiveAccel {
    /// The share of this accelerator's footprint that falls on `partition`
    /// (0 if the dataset does not touch it).
    pub fn footprint_on(&self, partition: PartitionId) -> f64 {
        if self.partitions.contains(&partition) {
            self.footprint_bytes as f64 / self.partitions.len() as f64
        } else {
            0.0
        }
    }

    /// Does this accelerator's dataset touch `partition`?
    pub fn touches(&self, partition: PartitionId) -> bool {
        self.partitions.contains(&partition)
    }
}

/// Per-partition aggregates of the active set, indexed by
/// [`PartitionId`]. Built by [`SystemSnapshot::build_aggregates`]; lets the
/// sense path answer its per-partition questions with one array load per
/// needed partition instead of a pass over every active accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PartitionLoad {
    /// Active non-coherent-DMA accelerators touching this partition.
    pub non_coh: u32,
    /// Active accelerators whose mode routes through this LLC partition.
    pub to_llc: u32,
    /// Sum of active footprint shares on this partition, in bytes.
    /// Accumulated in active-list (instance-id) order, so it is bit-equal
    /// to the on-demand sum the slow path computes.
    pub footprint: f64,
}

/// A snapshot of system status taken when a target accelerator is about to
/// be invoked. Input to every [`Policy`](crate::policy::Policy).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Architecture constants of the SoC this snapshot was taken on.
    pub arch: ArchParams,
    /// All accelerators active at snapshot time (excluding the target).
    pub active: Vec<ActiveAccel>,
    /// Memory footprint of the target invocation, in bytes.
    pub target_footprint: u64,
    /// The memory partitions the target invocation's dataset maps to.
    pub target_partitions: Vec<PartitionId>,
    /// Dense per-partition aggregates (index = `PartitionId.0`); empty
    /// until [`build_aggregates`](Self::build_aggregates) runs. Must be
    /// rebuilt (or left empty) after any mutation of `active`; the
    /// generation-stamped scratch in
    /// [`StatusTracker`](crate::status::StatusTracker) does exactly that.
    #[serde(skip)]
    pub(crate) agg: Vec<PartitionLoad>,
    /// Active fully-coherent accelerators; valid iff `agg` is non-empty.
    #[serde(skip)]
    pub(crate) fully_coh: u32,
}

/// Aggregates are a derived cache, not part of a snapshot's identity: two
/// snapshots are equal iff their logical fields are.
impl PartialEq for SystemSnapshot {
    fn eq(&self, other: &SystemSnapshot) -> bool {
        self.arch == other.arch
            && self.active == other.active
            && self.target_footprint == other.target_footprint
            && self.target_partitions == other.target_partitions
    }
}

impl SystemSnapshot {
    /// Creates a snapshot. `target_partitions` must be non-empty; an
    /// invocation always touches at least one memory partition.
    ///
    /// # Panics
    ///
    /// Panics if `target_partitions` is empty.
    pub fn new(
        arch: ArchParams,
        active: Vec<ActiveAccel>,
        target_footprint: u64,
        target_partitions: Vec<PartitionId>,
    ) -> SystemSnapshot {
        assert!(
            !target_partitions.is_empty(),
            "target invocation must map to at least one memory partition"
        );
        SystemSnapshot {
            arch,
            active,
            target_footprint,
            target_partitions,
            agg: Vec::new(),
            fully_coh: 0,
        }
    }

    /// Builds the dense per-partition aggregate table from the current
    /// active list, making every per-partition sense query O(needed
    /// partitions) instead of O(active × partitions).
    ///
    /// Footprint shares are accumulated in active-list order, so each
    /// partition's sum performs the identical f64 additions the on-demand
    /// path performs (skipped zero contributions are exact no-ops for
    /// non-negative footprints) — sensed states are bit-identical either
    /// way. Callers that mutate `active` afterwards must rebuild.
    pub fn build_aggregates(&mut self) {
        self.agg.clear();
        self.agg
            .resize(self.arch.num_partitions, PartitionLoad::default());
        self.fully_coh = 0;
        for a in &self.active {
            if a.mode == CoherenceMode::FullCoh {
                self.fully_coh += 1;
            }
            let non_coh = a.mode == CoherenceMode::NonCohDma;
            let to_llc = a.mode.accesses_llc();
            let share = a.footprint_bytes as f64 / a.partitions.len() as f64;
            for &p in &a.partitions {
                let i = p.0 as usize;
                if i >= self.agg.len() {
                    self.agg.resize(i + 1, PartitionLoad::default());
                }
                let slot = &mut self.agg[i];
                slot.non_coh += u32::from(non_coh);
                slot.to_llc += u32::from(to_llc);
                slot.footprint += share;
            }
        }
    }

    /// The per-partition aggregate table, if
    /// [`build_aggregates`](Self::build_aggregates) has run (indexed by
    /// `PartitionId.0`).
    pub fn partition_loads(&self) -> Option<&[PartitionLoad]> {
        if self.agg.is_empty() {
            None
        } else {
            Some(&self.agg)
        }
    }

    /// Number of active accelerators (the target not included).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of active accelerators currently in `mode`.
    pub fn active_in_mode(&self, mode: CoherenceMode) -> usize {
        self.active.iter().filter(|a| a.mode == mode).count()
    }

    /// Sum of the footprints of all active accelerators, in bytes.
    /// (`active_footprint` in Algorithm 1.)
    pub fn active_footprint_bytes(&self) -> u64 {
        self.active.iter().map(|a| a.footprint_bytes).sum()
    }

    /// *Fully coh acc* attribute of Table 3: total number of active
    /// fully-coherent accelerators.
    pub fn fully_coherent_count(&self) -> usize {
        if !self.agg.is_empty() {
            return self.fully_coh as usize;
        }
        self.active_in_mode(CoherenceMode::FullCoh)
    }

    /// The aggregate slot for a partition (zero if no active accelerator
    /// touches it — exactly what a pass over the active list would find).
    fn load_of(&self, p: PartitionId) -> PartitionLoad {
        self.agg.get(p.0 as usize).copied().unwrap_or_default()
    }

    /// *Non coh acc per tile* of Table 3: average number of non-coherent
    /// accelerators communicating with each memory partition needed by the
    /// target invocation.
    pub fn avg_non_coh_per_needed_partition(&self) -> f64 {
        if !self.agg.is_empty() {
            return self.avg_over_needed_partitions(|p| self.load_of(p).non_coh as f64);
        }
        self.avg_over_needed_partitions(|p| {
            self.active
                .iter()
                .filter(|a| a.mode == CoherenceMode::NonCohDma && a.touches(p))
                .count() as f64
        })
    }

    /// *To LLC per tile* of Table 3: average number of accelerators whose
    /// requests reach each LLC partition needed by the target invocation
    /// (every mode except non-coherent DMA routes through the LLC).
    pub fn avg_to_llc_per_needed_partition(&self) -> f64 {
        if !self.agg.is_empty() {
            return self.avg_over_needed_partitions(|p| self.load_of(p).to_llc as f64);
        }
        self.avg_over_needed_partitions(|p| {
            self.active
                .iter()
                .filter(|a| a.mode.accesses_llc() && a.touches(p))
                .count() as f64
        })
    }

    /// *Tile footprint* of Table 3 (before discretization): average number of
    /// bytes of active data — including the target's own share — mapped to
    /// each cache-hierarchy partition needed by the target invocation.
    pub fn avg_needed_partition_footprint(&self) -> f64 {
        let target_share = self.target_footprint as f64 / self.target_partitions.len() as f64;
        if !self.agg.is_empty() {
            return self
                .avg_over_needed_partitions(|p| self.load_of(p).footprint + target_share);
        }
        self.avg_over_needed_partitions(|p| {
            let others: f64 = self.active.iter().map(|a| a.footprint_on(p)).sum();
            others + target_share
        })
    }

    /// Averages `f(partition)` over the partitions needed by the target.
    fn avg_over_needed_partitions<F: Fn(PartitionId) -> f64>(&self, f: F) -> f64 {
        let sum: f64 = self.target_partitions.iter().map(|&p| f(p)).sum();
        sum / self.target_partitions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchParams {
        ArchParams::new(32 * 1024, 256 * 1024, 2)
    }

    fn active(id: u16, mode: CoherenceMode, kb: u64, parts: &[u16]) -> ActiveAccel {
        ActiveAccel {
            instance: AccelInstanceId(id),
            mode,
            footprint_bytes: kb * 1024,
            partitions: parts.iter().map(|&p| PartitionId(p)).collect(),
        }
    }

    #[test]
    fn llc_total_is_slices_times_partitions() {
        assert_eq!(arch().llc_total_bytes(), 512 * 1024);
    }

    #[test]
    fn empty_system_has_zero_everything() {
        let s = SystemSnapshot::new(arch(), vec![], 4096, vec![PartitionId(0)]);
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.fully_coherent_count(), 0);
        assert_eq!(s.avg_non_coh_per_needed_partition(), 0.0);
        assert_eq!(s.avg_to_llc_per_needed_partition(), 0.0);
        // Only the target's own footprint counts toward partition pressure.
        assert_eq!(s.avg_needed_partition_footprint(), 4096.0);
    }

    #[test]
    #[should_panic(expected = "at least one memory partition")]
    fn empty_target_partitions_panics() {
        SystemSnapshot::new(arch(), vec![], 4096, vec![]);
    }

    #[test]
    fn counts_by_mode() {
        let s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::FullCoh, 16, &[0]),
                active(2, CoherenceMode::FullCoh, 16, &[1]),
                active(3, CoherenceMode::NonCohDma, 64, &[0]),
            ],
            16 * 1024,
            vec![PartitionId(0)],
        );
        assert_eq!(s.fully_coherent_count(), 2);
        assert_eq!(s.active_in_mode(CoherenceMode::NonCohDma), 1);
        assert_eq!(s.active_footprint_bytes(), 96 * 1024);
    }

    #[test]
    fn per_partition_averages_respect_partition_mapping() {
        // Two non-coherent accelerators on partition 0, none on partition 1.
        let s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::NonCohDma, 16, &[0]),
                active(2, CoherenceMode::NonCohDma, 16, &[0]),
            ],
            4096,
            vec![PartitionId(0), PartitionId(1)],
        );
        // Target needs both partitions; avg over {2, 0} = 1.
        assert_eq!(s.avg_non_coh_per_needed_partition(), 1.0);

        let s_only_p0 = SystemSnapshot::new(
            s.arch,
            s.active.clone(),
            4096,
            vec![PartitionId(0)],
        );
        assert_eq!(s_only_p0.avg_non_coh_per_needed_partition(), 2.0);
    }

    #[test]
    fn to_llc_counts_all_llc_modes() {
        let s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::LlcCohDma, 16, &[0]),
                active(2, CoherenceMode::CohDma, 16, &[0]),
                active(3, CoherenceMode::FullCoh, 16, &[0]),
                active(4, CoherenceMode::NonCohDma, 16, &[0]),
            ],
            4096,
            vec![PartitionId(0)],
        );
        assert_eq!(s.avg_to_llc_per_needed_partition(), 3.0);
    }

    #[test]
    fn footprint_share_splits_across_partitions() {
        let a = active(1, CoherenceMode::CohDma, 64, &[0, 1]);
        assert_eq!(a.footprint_on(PartitionId(0)), 32.0 * 1024.0);
        assert_eq!(a.footprint_on(PartitionId(1)), 32.0 * 1024.0);
        assert_eq!(a.footprint_on(PartitionId(9)), 0.0);
    }

    #[test]
    fn aggregates_match_on_demand_answers_bit_for_bit() {
        // A mix that exercises every attribute: all four modes, multi- and
        // single-partition datasets, and fractional per-partition shares.
        let mut s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::FullCoh, 48, &[0]),
                active(2, CoherenceMode::NonCohDma, 33, &[0, 1]),
                active(3, CoherenceMode::LlcCohDma, 7, &[1]),
                active(4, CoherenceMode::CohDma, 129, &[0]),
                active(5, CoherenceMode::NonCohDma, 500, &[1]),
            ],
            100 * 1024,
            vec![PartitionId(0), PartitionId(1)],
        );
        let slow = (
            s.fully_coherent_count(),
            s.avg_non_coh_per_needed_partition(),
            s.avg_to_llc_per_needed_partition(),
            s.avg_needed_partition_footprint(),
        );
        s.build_aggregates();
        assert!(s.partition_loads().is_some());
        let fast = (
            s.fully_coherent_count(),
            s.avg_non_coh_per_needed_partition(),
            s.avg_to_llc_per_needed_partition(),
            s.avg_needed_partition_footprint(),
        );
        // Bit-for-bit, not approximately: the sense path must discretize
        // identically with or without the aggregate table.
        assert_eq!(slow.0, fast.0);
        assert_eq!(slow.1.to_bits(), fast.1.to_bits());
        assert_eq!(slow.2.to_bits(), fast.2.to_bits());
        assert_eq!(slow.3.to_bits(), fast.3.to_bits());
    }

    #[test]
    fn aggregates_do_not_affect_snapshot_equality() {
        let mut a = SystemSnapshot::new(
            arch(),
            vec![active(1, CoherenceMode::FullCoh, 48, &[0])],
            4096,
            vec![PartitionId(0)],
        );
        let b = a.clone();
        a.build_aggregates();
        assert_eq!(a, b);
    }

    #[test]
    fn partition_footprint_includes_target_share() {
        let s = SystemSnapshot::new(
            arch(),
            vec![active(1, CoherenceMode::CohDma, 64, &[0])],
            32 * 1024,
            vec![PartitionId(0)],
        );
        assert_eq!(s.avg_needed_partition_footprint(), (64.0 + 32.0) * 1024.0);
    }
}
