//! The "sense" phase: a compact snapshot of SoC status.
//!
//! Tracking the complete state of an SoC is intractable, so the paper's
//! software layer records only the variables shown to matter (Section 4.1):
//! the number of active accelerators, the coherence mode of each, and their
//! memory footprints — plus which memory partitions each active dataset maps
//! to, because contention is per-partition. [`SystemSnapshot`] is that
//! record, taken at the moment one particular accelerator is about to be
//! invoked (the *target* invocation).

use serde::{Deserialize, Serialize};

use crate::modes::CoherenceMode;
use crate::{AccelInstanceId, PartitionId};

/// The architecture constants the sense layer needs in order to discretize
/// footprints: private-cache and LLC-slice capacities and the number of
/// memory partitions. These mirror the per-SoC rows of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Capacity of one private (L2) cache in bytes.
    pub l2_bytes: u64,
    /// Capacity of one LLC partition (slice) in bytes.
    pub llc_slice_bytes: u64,
    /// Number of memory partitions (LLC slice + DRAM controller pairs).
    pub num_partitions: usize,
}

impl ArchParams {
    /// Convenience constructor.
    pub fn new(l2_bytes: u64, llc_slice_bytes: u64, num_partitions: usize) -> ArchParams {
        ArchParams {
            l2_bytes,
            llc_slice_bytes,
            num_partitions,
        }
    }

    /// Aggregate LLC capacity across all partitions.
    pub fn llc_total_bytes(&self) -> u64 {
        self.llc_slice_bytes * self.num_partitions as u64
    }
}

/// One currently-active accelerator invocation, as recorded by the status
/// tracker when the accelerator was started.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveAccel {
    /// Which accelerator tile is running.
    pub instance: AccelInstanceId,
    /// The coherence mode it was started with.
    pub mode: CoherenceMode,
    /// Memory footprint (workload size) of its invocation, in bytes.
    pub footprint_bytes: u64,
    /// The memory partitions its dataset maps to. The footprint is assumed
    /// to be spread evenly across them (ESP allocates datasets in contiguous
    /// big pages, so this is typically a single partition).
    pub partitions: Vec<PartitionId>,
}

impl ActiveAccel {
    /// The share of this accelerator's footprint that falls on `partition`
    /// (0 if the dataset does not touch it).
    pub fn footprint_on(&self, partition: PartitionId) -> f64 {
        if self.partitions.contains(&partition) {
            self.footprint_bytes as f64 / self.partitions.len() as f64
        } else {
            0.0
        }
    }

    /// Does this accelerator's dataset touch `partition`?
    pub fn touches(&self, partition: PartitionId) -> bool {
        self.partitions.contains(&partition)
    }
}

/// A snapshot of system status taken when a target accelerator is about to
/// be invoked. Input to every [`Policy`](crate::policy::Policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Architecture constants of the SoC this snapshot was taken on.
    pub arch: ArchParams,
    /// All accelerators active at snapshot time (excluding the target).
    pub active: Vec<ActiveAccel>,
    /// Memory footprint of the target invocation, in bytes.
    pub target_footprint: u64,
    /// The memory partitions the target invocation's dataset maps to.
    pub target_partitions: Vec<PartitionId>,
}

impl SystemSnapshot {
    /// Creates a snapshot. `target_partitions` must be non-empty; an
    /// invocation always touches at least one memory partition.
    ///
    /// # Panics
    ///
    /// Panics if `target_partitions` is empty.
    pub fn new(
        arch: ArchParams,
        active: Vec<ActiveAccel>,
        target_footprint: u64,
        target_partitions: Vec<PartitionId>,
    ) -> SystemSnapshot {
        assert!(
            !target_partitions.is_empty(),
            "target invocation must map to at least one memory partition"
        );
        SystemSnapshot {
            arch,
            active,
            target_footprint,
            target_partitions,
        }
    }

    /// Number of active accelerators (the target not included).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of active accelerators currently in `mode`.
    pub fn active_in_mode(&self, mode: CoherenceMode) -> usize {
        self.active.iter().filter(|a| a.mode == mode).count()
    }

    /// Sum of the footprints of all active accelerators, in bytes.
    /// (`active_footprint` in Algorithm 1.)
    pub fn active_footprint_bytes(&self) -> u64 {
        self.active.iter().map(|a| a.footprint_bytes).sum()
    }

    /// *Fully coh acc* attribute of Table 3: total number of active
    /// fully-coherent accelerators.
    pub fn fully_coherent_count(&self) -> usize {
        self.active_in_mode(CoherenceMode::FullCoh)
    }

    /// *Non coh acc per tile* of Table 3: average number of non-coherent
    /// accelerators communicating with each memory partition needed by the
    /// target invocation.
    pub fn avg_non_coh_per_needed_partition(&self) -> f64 {
        self.avg_over_needed_partitions(|p| {
            self.active
                .iter()
                .filter(|a| a.mode == CoherenceMode::NonCohDma && a.touches(p))
                .count() as f64
        })
    }

    /// *To LLC per tile* of Table 3: average number of accelerators whose
    /// requests reach each LLC partition needed by the target invocation
    /// (every mode except non-coherent DMA routes through the LLC).
    pub fn avg_to_llc_per_needed_partition(&self) -> f64 {
        self.avg_over_needed_partitions(|p| {
            self.active
                .iter()
                .filter(|a| a.mode.accesses_llc() && a.touches(p))
                .count() as f64
        })
    }

    /// *Tile footprint* of Table 3 (before discretization): average number of
    /// bytes of active data — including the target's own share — mapped to
    /// each cache-hierarchy partition needed by the target invocation.
    pub fn avg_needed_partition_footprint(&self) -> f64 {
        let target_share = self.target_footprint as f64 / self.target_partitions.len() as f64;
        self.avg_over_needed_partitions(|p| {
            let others: f64 = self.active.iter().map(|a| a.footprint_on(p)).sum();
            others + target_share
        })
    }

    /// Averages `f(partition)` over the partitions needed by the target.
    fn avg_over_needed_partitions<F: Fn(PartitionId) -> f64>(&self, f: F) -> f64 {
        let sum: f64 = self.target_partitions.iter().map(|&p| f(p)).sum();
        sum / self.target_partitions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchParams {
        ArchParams::new(32 * 1024, 256 * 1024, 2)
    }

    fn active(id: u16, mode: CoherenceMode, kb: u64, parts: &[u16]) -> ActiveAccel {
        ActiveAccel {
            instance: AccelInstanceId(id),
            mode,
            footprint_bytes: kb * 1024,
            partitions: parts.iter().map(|&p| PartitionId(p)).collect(),
        }
    }

    #[test]
    fn llc_total_is_slices_times_partitions() {
        assert_eq!(arch().llc_total_bytes(), 512 * 1024);
    }

    #[test]
    fn empty_system_has_zero_everything() {
        let s = SystemSnapshot::new(arch(), vec![], 4096, vec![PartitionId(0)]);
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.fully_coherent_count(), 0);
        assert_eq!(s.avg_non_coh_per_needed_partition(), 0.0);
        assert_eq!(s.avg_to_llc_per_needed_partition(), 0.0);
        // Only the target's own footprint counts toward partition pressure.
        assert_eq!(s.avg_needed_partition_footprint(), 4096.0);
    }

    #[test]
    #[should_panic(expected = "at least one memory partition")]
    fn empty_target_partitions_panics() {
        SystemSnapshot::new(arch(), vec![], 4096, vec![]);
    }

    #[test]
    fn counts_by_mode() {
        let s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::FullCoh, 16, &[0]),
                active(2, CoherenceMode::FullCoh, 16, &[1]),
                active(3, CoherenceMode::NonCohDma, 64, &[0]),
            ],
            16 * 1024,
            vec![PartitionId(0)],
        );
        assert_eq!(s.fully_coherent_count(), 2);
        assert_eq!(s.active_in_mode(CoherenceMode::NonCohDma), 1);
        assert_eq!(s.active_footprint_bytes(), 96 * 1024);
    }

    #[test]
    fn per_partition_averages_respect_partition_mapping() {
        // Two non-coherent accelerators on partition 0, none on partition 1.
        let s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::NonCohDma, 16, &[0]),
                active(2, CoherenceMode::NonCohDma, 16, &[0]),
            ],
            4096,
            vec![PartitionId(0), PartitionId(1)],
        );
        // Target needs both partitions; avg over {2, 0} = 1.
        assert_eq!(s.avg_non_coh_per_needed_partition(), 1.0);

        let s_only_p0 = SystemSnapshot::new(
            s.arch,
            s.active.clone(),
            4096,
            vec![PartitionId(0)],
        );
        assert_eq!(s_only_p0.avg_non_coh_per_needed_partition(), 2.0);
    }

    #[test]
    fn to_llc_counts_all_llc_modes() {
        let s = SystemSnapshot::new(
            arch(),
            vec![
                active(1, CoherenceMode::LlcCohDma, 16, &[0]),
                active(2, CoherenceMode::CohDma, 16, &[0]),
                active(3, CoherenceMode::FullCoh, 16, &[0]),
                active(4, CoherenceMode::NonCohDma, 16, &[0]),
            ],
            4096,
            vec![PartitionId(0)],
        );
        assert_eq!(s.avg_to_llc_per_needed_partition(), 3.0);
    }

    #[test]
    fn footprint_share_splits_across_partitions() {
        let a = active(1, CoherenceMode::CohDma, 64, &[0, 1]);
        assert_eq!(a.footprint_on(PartitionId(0)), 32.0 * 1024.0);
        assert_eq!(a.footprint_on(PartitionId(1)), 32.0 * 1024.0);
        assert_eq!(a.footprint_on(PartitionId(9)), 0.0);
    }

    #[test]
    fn partition_footprint_includes_target_share() {
        let s = SystemSnapshot::new(
            arch(),
            vec![active(1, CoherenceMode::CohDma, 64, &[0])],
            32 * 1024,
            vec![PartitionId(0)],
        );
        assert_eq!(s.avg_needed_partition_footprint(), (64.0 + 32.0) * 1024.0);
    }
}
