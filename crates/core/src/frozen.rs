//! Read-optimized frozen decision tables: the serving-side counterpart of
//! the [`router`](crate::router) module.
//!
//! A trained policy's persisted artifact — a Q-table TSV or a namespaced
//! router-tables document — still carries the full learner shape: per-agent
//! stores, exploration state, reward history. None of that belongs on a
//! serving read path. This module collapses the artifact into a
//! [`FrozenSnapshot`]: for every `(state, availability-mask)` pair the
//! argmax is **precomputed** into a dense byte table, so a served decision
//! is two indexed loads and no floating-point compare — and, crucially, the
//! structure is immutable after construction, so it can be shared across
//! reader threads behind an `Arc` with no lock and no interior mutability.
//!
//! Semantics are pinned to the live stack:
//!
//! * Per-table argmax is exactly [`best_entry`] (strict `>`, ties to the
//!   lowest mode index) — the same function every frozen exploration
//!   strategy reduces to.
//! * Key resolution mirrors [`PolicyRouter`](crate::router::PolicyRouter)
//!   dispatch: global routing uses the global table; per-kind routing maps
//!   an instance's kind to its table, falling back to the global catch-all
//!   for unregistered instances; per-instance routing uses the instance's
//!   table. A key with no table behaves like the fresh zero-table agent the
//!   live router would create: every mode reads Q = 0, so the argmax is the
//!   lowest-index available mode.
//!
//! [`FrozenPolicy`] closes the loop for in-engine use: it is a [`Policy`]
//! whose decide phase senses exactly like [`LearnedPolicy`](crate::agent::LearnedPolicy)
//! (`State::from_snapshot` + `encode_sensed`) and then consults the frozen
//! snapshot — the local reference that a remote serving path must match
//! bit for bit.

use std::fmt;
use std::sync::Arc;

use crate::modes::{CoherenceMode, ModeSet};
use crate::policy::{Decision, Policy, PolicyComplexity};
use crate::router::{AgentScope, ScopeKey};
use crate::snapshot::SystemSnapshot;
use crate::space::StateSpace;
use crate::state::State;
use crate::value::{best_entry, QTable, ValueStore};
use crate::{AccelInstanceId, AccelKindId};

/// Number of availability masks over the four modes (2⁴, including the
/// unused empty mask so indexing is a plain shift).
const MASKS: usize = 1 << CoherenceMode::COUNT;

const TABLES_HEADER: &str = "# cohmeleon router tables v1";
const QTABLE_HEADER: &str = "# cohmeleon q-table v1";

/// Slot sentinel: no table materialised for that key.
const NO_SLOT: u32 = u32::MAX;

/// The 4-bit availability mask of a mode set (bit *i* set ⇔ mode index
/// *i* present). The wire form of [`ModeSet`] in the serving protocol.
pub fn mode_mask(set: ModeSet) -> u8 {
    set.iter().fold(0u8, |m, mode| m | (1 << mode.index()))
}

/// The mode set of a 4-bit availability mask (inverse of [`mode_mask`];
/// bits above the mode count are ignored).
pub fn mask_modes(mask: u8) -> ModeSet {
    ModeSet::from_modes(
        CoherenceMode::ALL
            .into_iter()
            .filter(|m| mask & (1 << m.index()) != 0),
    )
}

/// One agent's Q-table, collapsed to its argmax: `best[state * 16 + mask]`
/// holds the winning mode index for every non-empty availability mask.
#[derive(Clone)]
pub struct FrozenTable {
    best: Vec<u8>,
}

impl FrozenTable {
    /// Precomputes the argmax of `store` for every `(state, mask)` pair.
    /// `store.states()` rows are covered.
    pub fn from_store<V: ValueStore + ?Sized>(store: &V) -> FrozenTable {
        let states = store.states();
        let mut best = vec![0u8; states * MASKS];
        for state in 0..states {
            for mask in 1..MASKS {
                let set = mask_modes(mask as u8);
                let mode = best_entry(store, state, set).expect("non-empty mask");
                best[state * MASKS + mask] = mode.index() as u8;
            }
        }
        FrozenTable { best }
    }

    /// Number of states covered.
    pub fn states(&self) -> usize {
        self.best.len() / MASKS
    }

    /// The precomputed argmax for `state` among `available`; `None` iff
    /// `available` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range (callers validate against
    /// [`FrozenSnapshot::states`] first).
    #[inline]
    pub fn decide(&self, state: usize, available: ModeSet) -> Option<CoherenceMode> {
        if available.is_empty() {
            return None;
        }
        let mask = mode_mask(available) as usize;
        Some(CoherenceMode::from_index(
            self.best[state * MASKS + mask] as usize,
        ))
    }
}

impl fmt::Debug for FrozenTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenTable")
            .field("states", &self.states())
            .finish_non_exhaustive()
    }
}

/// 64-bit FNV-1a of the snapshot text — a cheap stable fingerprint for
/// telling table versions apart in server stats and logs.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// An immutable, read-optimized decision store: every agent table of one
/// persisted artifact collapsed to [`FrozenTable`]s plus the dense
/// key → slot maps that mirror live router dispatch.
///
/// Construction does all the work; after [`parse`](Self::parse) the
/// structure is never written again, so it is freely shareable across
/// threads (`Arc<FrozenSnapshot>`) with no synchronisation on reads.
#[derive(Clone)]
pub struct FrozenSnapshot {
    scope: AgentScope,
    states: usize,
    tables: Vec<(ScopeKey, FrozenTable)>,
    slot_global: u32,
    slot_of_kind: Vec<u32>,
    slot_of_instance: Vec<u32>,
    fingerprint: u64,
}

impl FrozenSnapshot {
    /// Parses a persisted decision artifact with `states` rows per table.
    ///
    /// Accepts both on-disk forms:
    ///
    /// * a namespaced router-tables document (`# cohmeleon router tables
    ///   v1 scope=<scope>` followed by `## agent <key>` sections), as
    ///   produced by `PolicyRouter::export_tables`;
    /// * a bare Q-table TSV (`# cohmeleon q-table v1`), as produced by a
    ///   single global agent — loaded as a global-scope snapshot with one
    ///   table.
    ///
    /// Leading blank lines and `#` comments **before** the header are
    /// skipped, so snapshot files may carry provenance comments.
    ///
    /// # Errors
    ///
    /// Returns a message for non-comment content before the header, a
    /// missing header or scope, an unparsable/duplicated/unreachable
    /// section key, a malformed table body, or a state index ≥ `states`.
    pub fn parse(text: &str, states: usize) -> Result<FrozenSnapshot, String> {
        let fingerprint = fnv1a(text);
        let mut lines = text.lines();
        let mut header: Option<&str> = None;
        for line in lines.by_ref() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with(TABLES_HEADER) || trimmed.starts_with(QTABLE_HEADER) {
                header = Some(trimmed);
                break;
            }
            if trimmed.starts_with('#') {
                continue; // provenance comment
            }
            return Err(format!("content before the snapshot header: `{line}`"));
        }
        let Some(header) = header else {
            return Err("no q-table or router-tables header found".to_owned());
        };

        let (scope, sections) = if let Some(rest) = header.strip_prefix(TABLES_HEADER) {
            let Some(scope) = rest.trim().strip_prefix("scope=") else {
                return Err(format!("router-tables header without scope: `{header}`"));
            };
            let scope: AgentScope = scope.trim().parse().map_err(|e| format!("{e}"))?;
            let mut current: Option<(ScopeKey, String)> = None;
            let mut sections: Vec<(ScopeKey, String)> = Vec::new();
            for line in lines {
                if let Some(key) = line.strip_prefix("## agent ") {
                    if let Some(section) = current.take() {
                        sections.push(section);
                    }
                    current = Some((key.trim().parse()?, String::new()));
                } else if let Some((_, body)) = &mut current {
                    body.push_str(line);
                    body.push('\n');
                } else if !line.trim().is_empty() {
                    return Err(format!("content before the first agent section: `{line}`"));
                }
            }
            if let Some(section) = current.take() {
                sections.push(section);
            }
            (scope, sections)
        } else {
            // A bare q-table: one global agent's store.
            let body: String = lines.map(|l| format!("{l}\n")).collect();
            (AgentScope::Global, vec![(ScopeKey::Global, body)])
        };

        let mut tables: Vec<(ScopeKey, FrozenTable)> = Vec::with_capacity(sections.len());
        for (key, body) in sections {
            if tables.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate section for agent {key}"));
            }
            let reachable = match scope {
                AgentScope::Global => matches!(key, ScopeKey::Global),
                // Global is PerKind's catch-all for unregistered instances.
                AgentScope::PerKind => !matches!(key, ScopeKey::Instance(_)),
                AgentScope::PerInstance => matches!(key, ScopeKey::Instance(_)),
            };
            if !reachable {
                return Err(format!(
                    "section for agent {key} is unreachable under {scope} routing"
                ));
            }
            let table = QTable::from_tsv_with_states(&body, states)
                .map_err(|e| format!("agent {key}: {e}"))?;
            tables.push((key, FrozenTable::from_store(&table)));
        }
        tables.sort_by_key(|(key, _)| *key);

        let mut snapshot = FrozenSnapshot {
            scope,
            states,
            tables,
            slot_global: NO_SLOT,
            slot_of_kind: Vec::new(),
            slot_of_instance: Vec::new(),
            fingerprint,
        };
        for (slot, (key, _)) in snapshot.tables.iter().enumerate() {
            let slot = slot as u32;
            match *key {
                ScopeKey::Global => snapshot.slot_global = slot,
                ScopeKey::Kind(k) => {
                    let i = k.0 as usize;
                    if i >= snapshot.slot_of_kind.len() {
                        snapshot.slot_of_kind.resize(i + 1, NO_SLOT);
                    }
                    snapshot.slot_of_kind[i] = slot;
                }
                ScopeKey::Instance(a) => {
                    let i = a.0 as usize;
                    if i >= snapshot.slot_of_instance.len() {
                        snapshot.slot_of_instance.resize(i + 1, NO_SLOT);
                    }
                    snapshot.slot_of_instance[i] = slot;
                }
            }
        }
        Ok(snapshot)
    }

    /// The routing scope the tables were exported from.
    pub fn scope(&self) -> AgentScope {
        self.scope
    }

    /// Number of states per table; query state indices must be below this.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of agent tables materialised.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The materialised table keys, in [`ScopeKey`] order.
    pub fn keys(&self) -> impl Iterator<Item = ScopeKey> + '_ {
        self.tables.iter().map(|(key, _)| *key)
    }

    /// FNV-1a fingerprint of the source text (stable version identity for
    /// server stats).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Resolves one decision exactly as a frozen live router would:
    /// the owning table's precomputed argmax, or the lowest-index
    /// available mode where no table exists for the key (the fresh
    /// zero-table agent's behaviour). `kind` is the instance's registered
    /// accelerator kind, `None` if unregistered (per-kind routing then
    /// falls back to the global catch-all).
    ///
    /// Returns `None` iff `available` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `state >= self.states()` — the serving layer validates
    /// query state indices before dispatch.
    #[inline]
    pub fn decide(
        &self,
        instance: AccelInstanceId,
        kind: Option<AccelKindId>,
        state: usize,
        available: ModeSet,
    ) -> Option<CoherenceMode> {
        if available.is_empty() {
            return None;
        }
        assert!(
            state < self.states,
            "state {state} out of range (snapshot covers {})",
            self.states
        );
        let slot = match self.scope {
            AgentScope::Global => self.slot_global,
            AgentScope::PerKind => match kind {
                Some(k) => self
                    .slot_of_kind
                    .get(k.0 as usize)
                    .copied()
                    .unwrap_or(NO_SLOT),
                None => self.slot_global,
            },
            AgentScope::PerInstance => self
                .slot_of_instance
                .get(instance.0 as usize)
                .copied()
                .unwrap_or(NO_SLOT),
        };
        if slot == NO_SLOT {
            // Zero-table fallback: every Q reads 0.0, argmax is the
            // lowest-index available mode.
            return available.iter().next();
        }
        self.tables[slot as usize].1.decide(state, available)
    }
}

impl fmt::Debug for FrozenSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenSnapshot")
            .field("scope", &self.scope)
            .field("states", &self.states)
            .field("tables", &self.keys().collect::<Vec<_>>())
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .finish()
    }
}

/// A [`Policy`] that answers every decision from a [`FrozenSnapshot`] —
/// the in-engine reference for served decisions.
///
/// The decide phase senses exactly like [`LearnedPolicy`]
/// (`State::from_snapshot`, then [`StateSpace::encode_sensed`]) and looks
/// the result up in the shared snapshot; `observe` is a no-op (the tables
/// are frozen by construction). A `RemotePolicy` that senses the same way
/// and ships `(instance, kind, state, mask)` to a server holding the same
/// snapshot is bit-identical to this policy — which is the property the
/// serving integration tests pin.
///
/// [`LearnedPolicy`]: crate::agent::LearnedPolicy
pub struct FrozenPolicy {
    snapshot: Arc<FrozenSnapshot>,
    space: Box<dyn StateSpace>,
    kind_of: Vec<Option<AccelKindId>>,
}

impl FrozenPolicy {
    /// Wraps `snapshot` with the state space the tables were trained
    /// under.
    ///
    /// # Panics
    ///
    /// Panics if `space.cardinality() != snapshot.states()` — a snapshot
    /// consulted through the wrong discretization would silently serve
    /// garbage.
    pub fn new(snapshot: Arc<FrozenSnapshot>, space: impl StateSpace + 'static) -> FrozenPolicy {
        assert_eq!(
            space.cardinality(),
            snapshot.states(),
            "state space cardinality must match the snapshot's state count"
        );
        FrozenPolicy {
            snapshot,
            space: Box::new(space),
            kind_of: Vec::new(),
        }
    }

    /// Convenience constructor for paper-default (Table-3, 243-state)
    /// snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not cover 243 states.
    pub fn table3(snapshot: Arc<FrozenSnapshot>) -> FrozenPolicy {
        FrozenPolicy::new(snapshot, crate::space::Table3Space)
    }

    /// The shared snapshot decisions are answered from.
    pub fn snapshot(&self) -> &Arc<FrozenSnapshot> {
        &self.snapshot
    }

    /// The registered kind of `instance`, if any (from
    /// [`Policy::bind_topology`]).
    pub fn kind_of(&self, instance: AccelInstanceId) -> Option<AccelKindId> {
        self.kind_of.get(instance.0 as usize).copied().flatten()
    }
}

impl fmt::Debug for FrozenPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenPolicy")
            .field("snapshot", &self.snapshot)
            .field("space", &self.space.label())
            .finish_non_exhaustive()
    }
}

impl Policy for FrozenPolicy {
    fn name(&self) -> String {
        "frozen".to_owned()
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        accel: AccelInstanceId,
    ) -> Decision {
        assert!(
            !available.is_empty(),
            "policy invoked with an empty set of available coherence modes"
        );
        let state = State::from_snapshot(snapshot);
        let state_index = self.space.encode_sensed(snapshot, &state);
        let kind = self.kind_of(accel);
        let mode = self
            .snapshot
            .decide(accel, kind, state_index, available)
            .expect("available is non-empty");
        Decision {
            mode,
            state,
            state_index,
        }
    }

    fn complexity(&self) -> PolicyComplexity {
        // Sense + table lookup, no learning machinery: charged like the
        // manual heuristic. Must match `RemotePolicy` so engine overhead
        // accounting is identical between local and remote dispatch.
        PolicyComplexity::Heuristic
    }

    fn bind_topology(&mut self, topology: &[(AccelInstanceId, AccelKindId)]) {
        for &(instance, kind) in topology {
            let i = instance.0 as usize;
            if i >= self.kind_of.len() {
                self.kind_of.resize(i + 1, None);
            }
            self.kind_of[i] = Some(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentBuilder;
    use crate::explore::Softmax;
    use crate::snapshot::{ActiveAccel, ArchParams};
    use crate::PartitionId;

    fn arch() -> ArchParams {
        ArchParams::new(32 * 1024, 256 * 1024, 2)
    }

    fn idle(footprint: u64) -> SystemSnapshot {
        SystemSnapshot::new(arch(), vec![], footprint, vec![PartitionId(0)])
    }

    fn busy(n: usize, footprint: u64) -> SystemSnapshot {
        let active = (0..n)
            .map(|i| ActiveAccel {
                instance: AccelInstanceId(i as u16),
                mode: CoherenceMode::FullCoh,
                footprint_bytes: 128 * 1024,
                partitions: vec![PartitionId(0)],
            })
            .collect();
        SystemSnapshot::new(arch(), active, footprint, vec![PartitionId(0)])
    }

    /// A deterministic synthetic table: distinct values per entry so
    /// argmaxes differ across states and masks.
    fn synthetic_table(states: usize, salt: u64) -> QTable {
        let mut t = QTable::with_states(states);
        for s in 0..states {
            for a in 0..CoherenceMode::COUNT {
                let v = ((s as u64 * 31 + a as u64 * 7 + salt) % 13) as f64 - 6.0;
                t.set_entry(s, a, v);
            }
        }
        t
    }

    #[test]
    fn mask_round_trips_every_subset() {
        for mask in 0u8..16 {
            let set = mask_modes(mask);
            assert_eq!(mode_mask(set), mask);
            assert_eq!(set.len(), mask.count_ones() as usize);
        }
        assert_eq!(mode_mask(ModeSet::all()), 0b1111);
    }

    #[test]
    fn frozen_table_matches_best_entry_everywhere() {
        let table = synthetic_table(27, 3);
        let frozen = FrozenTable::from_store(&table);
        assert_eq!(frozen.states(), 27);
        for state in 0..27 {
            for mask in 1u8..16 {
                let set = mask_modes(mask);
                assert_eq!(
                    frozen.decide(state, set),
                    best_entry(&table, state, set),
                    "state {state} mask {mask:#06b}"
                );
            }
        }
        assert_eq!(frozen.decide(0, ModeSet::EMPTY), None);
    }

    #[test]
    fn parses_bare_qtable_as_global_snapshot() {
        let table = synthetic_table(243, 1);
        let snap = FrozenSnapshot::parse(&table.to_tsv(), 243).unwrap();
        assert_eq!(snap.scope(), AgentScope::Global);
        assert_eq!(snap.states(), 243);
        assert_eq!(snap.num_tables(), 1);
        for state in [0usize, 7, 242] {
            for mask in 1u8..16 {
                let set = mask_modes(mask);
                assert_eq!(
                    snap.decide(AccelInstanceId(0), None, state, set),
                    best_entry(&table, state, set)
                );
            }
        }
    }

    #[test]
    fn provenance_comments_before_the_header_are_skipped() {
        let table = synthetic_table(243, 2);
        let text = format!(
            "# snapshot v1 grid=suite scenario=soc1 policy=cohmeleon seed=1 hash=abc\n\n{}",
            table.to_tsv()
        );
        let snap = FrozenSnapshot::parse(&text, 243).unwrap();
        assert_eq!(snap.num_tables(), 1);
        // Different text, different fingerprint.
        assert_ne!(
            snap.fingerprint(),
            FrozenSnapshot::parse(&table.to_tsv(), 243).unwrap().fingerprint()
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        // Non-comment content before the header.
        assert!(FrozenSnapshot::parse("hello\n# cohmeleon q-table v1\n", 243).is_err());
        // No header at all.
        assert!(FrozenSnapshot::parse("# just a comment\n", 243).is_err());
        // Router doc without a scope.
        assert!(FrozenSnapshot::parse("# cohmeleon router tables v1\n", 243).is_err());
        // Bad scope.
        assert!(
            FrozenSnapshot::parse("# cohmeleon router tables v1 scope=per-socket\n", 243).is_err()
        );
        // Content between header and first section.
        assert!(FrozenSnapshot::parse(
            "# cohmeleon router tables v1 scope=global\nstray\n",
            243
        )
        .is_err());
        // Duplicate key.
        assert!(FrozenSnapshot::parse(
            "# cohmeleon router tables v1 scope=per-kind\n## agent kind0\n## agent kind0\n",
            243
        )
        .is_err());
        // Unreachable key under the scope.
        assert!(FrozenSnapshot::parse(
            "# cohmeleon router tables v1 scope=per-kind\n## agent acc3\n",
            243
        )
        .is_err());
        // State index out of range for the declared cardinality.
        let table = synthetic_table(243, 0);
        assert!(FrozenSnapshot::parse(&table.to_tsv(), 27).is_err());
    }

    /// The headline identity: a frozen snapshot parsed from a live
    /// router's export decides bit-identically to that router, on every
    /// scope, including catch-all fallbacks. Softmax agents are pure
    /// argmax once frozen, so the live side is deterministic.
    #[test]
    fn snapshot_matches_live_router_on_every_scope() {
        let topology = [
            (AccelInstanceId(0), AccelKindId(0)),
            (AccelInstanceId(1), AccelKindId(0)),
            (AccelInstanceId(2), AccelKindId(1)),
            (AccelInstanceId(3), AccelKindId(2)),
        ];
        let snaps = [
            idle(1024),
            idle(1 << 20),
            busy(1, 4096),
            busy(3, 300 * 1024),
            busy(5, 64 * 1024),
        ];
        let sets = [
            ModeSet::all(),
            ModeSet::only(CoherenceMode::FullCoh),
            ModeSet::from_modes([CoherenceMode::NonCohDma, CoherenceMode::CohDma]),
            ModeSet::from_modes([CoherenceMode::LlcCohDma, CoherenceMode::FullCoh]),
        ];
        for scope in AgentScope::ALL {
            let mut router = AgentBuilder::paper(3, 11)
                .exploration(Softmax::default_schedule(3))
                .scope(scope)
                .build_routed();
            router.bind_topology(&topology);
            // Plant distinct per-agent tables through the namespaced
            // import, then freeze: live decisions are now pure argmax.
            let mut doc = format!("# cohmeleon router tables v1 scope={scope}\n");
            for (i, key) in router.agent_keys().collect::<Vec<_>>().into_iter().enumerate() {
                doc.push_str(&format!("## agent {key}\n"));
                doc.push_str(&synthetic_table(243, i as u64 + 1).to_tsv());
            }
            router.import_tables(&doc).unwrap();
            router.freeze();

            let frozen =
                Arc::new(FrozenSnapshot::parse(&router.export_tables(), 243).unwrap());
            assert_eq!(frozen.scope(), scope);
            let mut policy = FrozenPolicy::table3(Arc::clone(&frozen));
            policy.bind_topology(&topology);

            // Instance 9 is unregistered: per-kind falls back to the
            // global catch-all, per-instance to the zero-table default.
            for instance in [0u16, 1, 2, 3, 9] {
                for snap in &snaps {
                    for set in sets {
                        let live = router.decide(snap, set, AccelInstanceId(instance));
                        let cold = policy.decide(snap, set, AccelInstanceId(instance));
                        assert_eq!(live, cold, "scope {scope} instance {instance}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cardinality must match")]
    fn mismatched_space_is_rejected() {
        let table = synthetic_table(243, 1);
        let snap = Arc::new(FrozenSnapshot::parse(&table.to_tsv(), 243).unwrap());
        let _ = FrozenPolicy::new(snap, crate::space::CoarseSpace);
    }

    #[test]
    fn unregistered_keys_fall_back_to_lowest_available() {
        let doc = "# cohmeleon router tables v1 scope=per-instance\n";
        let snap = FrozenSnapshot::parse(doc, 243).unwrap();
        assert_eq!(snap.num_tables(), 0);
        let set = ModeSet::from_modes([CoherenceMode::LlcCohDma, CoherenceMode::FullCoh]);
        assert_eq!(
            snap.decide(AccelInstanceId(5), None, 0, set),
            Some(CoherenceMode::LlcCohDma)
        );
        assert_eq!(snap.decide(AccelInstanceId(5), None, 0, ModeSet::EMPTY), None);
    }
}
