//! Error type for the core crate.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring the Cohmeleon framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A policy was given an empty set of available coherence modes.
    EmptyModeSet,
    /// Reward weights were all zero or non-finite.
    InvalidRewardWeights {
        /// The offending `(x, y, z)` triple.
        weights: (f64, f64, f64),
    },
    /// A learning schedule requested zero training iterations.
    ZeroTrainingIterations,
    /// An architecture parameter was zero or inconsistent.
    InvalidArchParams {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyModeSet => write!(f, "no coherence modes available for selection"),
            CoreError::InvalidRewardWeights { weights } => write!(
                f,
                "reward weights ({}, {}, {}) must be finite, non-negative and not all zero",
                weights.0, weights.1, weights.2
            ),
            CoreError::ZeroTrainingIterations => {
                write!(f, "learning schedule must have at least one training iteration")
            }
            CoreError::InvalidArchParams { reason } => {
                write!(f, "invalid architecture parameters: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CoreError::EmptyModeSet;
        let msg = e.to_string();
        assert!(msg.starts_with("no coherence"));
        let e = CoreError::InvalidRewardWeights {
            weights: (0.0, 0.0, 0.0),
        };
        assert!(e.to_string().contains("(0, 0, 0)"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(CoreError::ZeroTrainingIterations);
    }
}
