//! Coherence-selection policies: the paper's baselines and Cohmeleon itself.
//!
//! A [`Policy`] is consulted once per accelerator invocation ("decide") and
//! informed of the measured outcome once the invocation completes
//! ("evaluate"). The available implementations mirror Section 4.3:
//!
//! * [`RandomPolicy`] — uniformly random mode per invocation.
//! * [`FixedPolicy`] — one mode for every invocation (the four *fixed
//!   homogeneous* design-time baselines).
//! * [`FixedHeterogeneousPolicy`] — a design-time mode per accelerator
//!   *kind*, chosen by offline profiling (the paper's stand-in for prior
//!   design-time work such as Bhardwaj et al.).
//! * [`ManualPolicy`] — Algorithm 1, the hand-tuned runtime heuristic.
//! * [`CohmeleonPolicy`] — the Q-learning approach (the contribution),
//!   now the paper-default composition of the generic
//!   [`LearnedPolicy`] agent stack.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::manual::{algorithm1_restricted, ManualThresholds};
use crate::modes::{CoherenceMode, ModeSet};
use crate::reward::InvocationMeasurement;
use crate::router::{AgentScope, PolicyRouter, ScopeKey};
use crate::snapshot::SystemSnapshot;
use crate::state::State;
use crate::{AccelInstanceId, AccelKindId};

pub use crate::agent::{CohmeleonPolicy, LearnedPolicy};

/// The outcome of a policy's "decide" phase for one invocation.
///
/// Besides the selected mode it carries the discretized [`State`] the
/// decision was made in, which learning policies need back at
/// [`Policy::observe`] time (multiple invocations may be in flight
/// concurrently, each with its own decision context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The coherence mode to actuate.
    pub mode: CoherenceMode,
    /// The Table-3 state the system was sensed to be in when deciding
    /// (recorded per invocation for diagnostics and figures).
    pub state: State,
    /// The deciding policy's own state encoding — for a
    /// [`LearnedPolicy`] this is the index its
    /// [`StateSpace`](crate::space::StateSpace) produced, which
    /// [`Policy::observe`] needs back to credit the right value-store
    /// entry. For everything else it equals `state.index()`.
    pub state_index: usize,
}

impl Decision {
    /// A decision whose policy uses the paper's Table-3 encoding (the
    /// `state_index` is `state.index()`).
    pub fn new(mode: CoherenceMode, state: State) -> Decision {
        Decision {
            mode,
            state,
            state_index: state.index(),
        }
    }
}

/// How much software work a policy's decide phase performs — the embedding
/// system charges a corresponding runtime overhead (measured in Section 6,
/// "Cohmeleon Overhead").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyComplexity {
    /// Constant-time decisions (fixed, random): negligible bookkeeping.
    Simple,
    /// Reads the status structures and runs a small decision tree
    /// (the manual algorithm).
    Heuristic,
    /// Full sense + Q-table lookup + reward computation and update
    /// (Cohmeleon).
    Learned,
}

/// A runtime coherence-mode selection policy.
///
/// Implementations must be deterministic given their construction seed, so
/// that whole-system simulations are reproducible.
pub trait Policy: Send {
    /// A short display name (matching the paper's figure legends where
    /// applicable, e.g. `"cohmeleon"`, `"manual"`, `"fixed-non-coh-dma"`).
    ///
    /// **Stability contract.** Names are not just display strings: the
    /// experiment layer records them in every persisted cell record, and
    /// resumable sweeps and shard merges *verify* a record's stored name
    /// against the rebuilt grid's policy labels before trusting it (a
    /// mismatch means the checkpoint belongs to a different sweep).
    /// Renaming a policy therefore invalidates existing checkpoints and
    /// JSONL artifacts — keep names stable across versions; the concrete
    /// suite names are pinned by `policy_names_are_stable` in this
    /// module's tests.
    fn name(&self) -> String;

    /// Chooses a coherence mode for an invocation of `accel` given the
    /// sensed `snapshot`, restricted to `available` modes.
    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        accel: AccelInstanceId,
    ) -> Decision;

    /// Reports the measured outcome of a completed invocation previously
    /// decided by this policy. Default: ignore (non-learning policies).
    fn observe(
        &mut self,
        accel: AccelInstanceId,
        decision: &Decision,
        measurement: &InvocationMeasurement,
    ) {
        let _ = (accel, decision, measurement);
    }

    /// Marks the beginning of evaluation-application iteration `iteration`
    /// (for decay schedules). Default: no-op.
    fn begin_iteration(&mut self, iteration: usize) {
        let _ = iteration;
    }

    /// Permanently disables learning/exploration. Default: no-op.
    fn freeze(&mut self) {}

    /// The runtime cost class of this policy's decide phase.
    /// Default: [`PolicyComplexity::Simple`].
    fn complexity(&self) -> PolicyComplexity {
        PolicyComplexity::Simple
    }

    /// Informs the policy of the embedding system's accelerator topology
    /// (every `(instance, kind)` pair), before any invocation runs. The
    /// engine calls this once per application run; implementations must be
    /// idempotent. Default: ignore — only scope-aware policies (the
    /// [`PolicyRouter`]) care.
    fn bind_topology(&mut self, topology: &[(AccelInstanceId, AccelKindId)]) {
        let _ = topology;
    }

    /// Serialises the policy's learned state (Q-table TSV for a
    /// [`LearnedPolicy`], a namespaced multi-agent document for a
    /// [`PolicyRouter`]). `None` for policies
    /// with nothing to persist (the default).
    fn export_table(&self) -> Option<String> {
        None
    }

    /// Restores state previously produced by
    /// [`export_table`](Self::export_table).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed text, or for policies with no
    /// learned state (the default).
    fn import_table(&mut self, text: &str) -> Result<(), String> {
        let _ = text;
        Err("policy has no learned state to import".to_owned())
    }
}

fn guard_available(available: ModeSet) {
    assert!(
        !available.is_empty(),
        "policy invoked with an empty set of available coherence modes"
    );
}

/// Selects a uniformly random available mode for every invocation.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates a random policy with its own RNG stream.
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> String {
        "rand".to_owned()
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        _accel: AccelInstanceId,
    ) -> Decision {
        guard_available(available);
        let pick = self.rng.gen_range(0..available.len());
        Decision::new(
            available.iter().nth(pick).expect("index in range"),
            State::from_snapshot(snapshot),
        )
    }
}

/// Always selects the same mode (falling back to the lowest-index available
/// mode if the fixed one is unsupported for a given accelerator).
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy {
    mode: CoherenceMode,
}

impl FixedPolicy {
    /// Creates a fixed-homogeneous policy for `mode`.
    pub fn new(mode: CoherenceMode) -> FixedPolicy {
        FixedPolicy { mode }
    }

    /// The four fixed-homogeneous baselines of the paper's figures.
    pub fn all_homogeneous() -> [FixedPolicy; 4] {
        CoherenceMode::ALL.map(FixedPolicy::new)
    }

    /// The mode this policy always chooses.
    pub fn mode(&self) -> CoherenceMode {
        self.mode
    }
}

impl Policy for FixedPolicy {
    fn name(&self) -> String {
        format!("fixed-{}", self.mode.short_name())
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        _accel: AccelInstanceId,
    ) -> Decision {
        guard_available(available);
        let mode = if available.contains(self.mode) {
            self.mode
        } else {
            available.iter().next().expect("non-empty")
        };
        Decision::new(mode, State::from_snapshot(snapshot))
    }
}

/// A design-time mode per accelerator kind, produced by profiling each
/// accelerator in isolation across workload sizes (the *fixed heterogeneous*
/// baseline).
///
/// Per-kind dispatch is not hand-rolled here: the policy is a thin facade
/// over a [`PolicyRouter`] in
/// [`AgentScope::PerKind`] whose
/// sub-agents are [`FixedPolicy`] instances (the profiled mode per kind,
/// `default` for the catch-all agent), so the kind → agent routing logic
/// exists exactly once in the codebase. Decisions are byte-identical to
/// the pre-router implementation: a kind's `FixedPolicy` applies the same
/// availability fallback the hand-rolled lookup did.
pub struct FixedHeterogeneousPolicy {
    /// Shared with the router's factory (which builds one `FixedPolicy`
    /// per kind from it); kept here for [`mode_for_kind`](Self::mode_for_kind)
    /// and for `Clone`. The instance → kind mapping lives in the router
    /// alone (construction pairs plus anything `bind_topology` added).
    assignment: Arc<HashMap<AccelKindId, CoherenceMode>>,
    default: CoherenceMode,
    router: PolicyRouter,
}

impl FixedHeterogeneousPolicy {
    /// Creates the policy from a per-kind mode `assignment` and the mapping
    /// from instances to kinds. Instances of unknown kinds use `default`.
    pub fn new(
        assignment: HashMap<AccelKindId, CoherenceMode>,
        kind_of: HashMap<AccelInstanceId, AccelKindId>,
        default: CoherenceMode,
    ) -> FixedHeterogeneousPolicy {
        let assignment = Arc::new(assignment);
        let factory_assignment = Arc::clone(&assignment);
        let mut router = PolicyRouter::new(AgentScope::PerKind, 0, move |key, _seed| {
            let mode = match key {
                ScopeKey::Kind(kind) => factory_assignment
                    .get(&kind)
                    .copied()
                    .unwrap_or(default),
                _ => default,
            };
            Box::new(FixedPolicy::new(mode))
        })
        .with_label("fixed-hetero");
        for (instance, kind) in kind_of {
            router.register(instance, kind);
        }
        FixedHeterogeneousPolicy {
            assignment,
            default,
            router,
        }
    }

    /// The profiled mode for a kind, if one was assigned.
    pub fn mode_for_kind(&self, kind: AccelKindId) -> Option<CoherenceMode> {
        self.assignment.get(&kind).copied()
    }
}

impl Clone for FixedHeterogeneousPolicy {
    fn clone(&self) -> FixedHeterogeneousPolicy {
        // Rebuild from the router's *current* registrations (construction
        // pairs plus anything `bind_topology` added since), so a clone
        // routes every known instance exactly like the original; fixed
        // sub-agents hold no learned state, so a rebuild is equivalent.
        FixedHeterogeneousPolicy::new(
            (*self.assignment).clone(),
            self.router.topology().into_iter().collect(),
            self.default,
        )
    }
}

impl fmt::Debug for FixedHeterogeneousPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FixedHeterogeneousPolicy")
            .field("assignment", &self.assignment)
            .field("default", &self.default)
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}

impl Policy for FixedHeterogeneousPolicy {
    fn name(&self) -> String {
        self.router.name()
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        accel: AccelInstanceId,
    ) -> Decision {
        guard_available(available);
        self.router.decide(snapshot, available, accel)
    }

    fn bind_topology(&mut self, topology: &[(AccelInstanceId, AccelKindId)]) {
        // The design-time assignment is authoritative: registering a
        // *new* instance routes it to its kind's profiled mode (or the
        // catch-all default agent), exactly like construction-time pairs.
        self.router.bind_topology(topology);
    }
}

/// Algorithm 1: the introspective, manually-tuned runtime heuristic.
#[derive(Debug, Clone, Copy)]
pub struct ManualPolicy {
    thresholds: ManualThresholds,
}

impl ManualPolicy {
    /// Creates the manual policy with explicit thresholds.
    pub fn new(thresholds: ManualThresholds) -> ManualPolicy {
        ManualPolicy { thresholds }
    }

    /// The thresholds in use.
    pub fn thresholds(&self) -> ManualThresholds {
        self.thresholds
    }
}

impl Policy for ManualPolicy {
    fn name(&self) -> String {
        "manual".to_owned()
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        _accel: AccelInstanceId,
    ) -> Decision {
        guard_available(available);
        Decision::new(
            algorithm1_restricted(snapshot, &self.thresholds, available),
            State::from_snapshot(snapshot),
        )
    }

    fn complexity(&self) -> PolicyComplexity {
        PolicyComplexity::Heuristic
    }
}

/// Restricts an inner policy to a subset of coherence modes — the tool for
/// ablating hardware support (e.g. an ESP without the paper's coherent-DMA
/// protocol extension). If the intersection of the restriction and the
/// tile's available modes is empty, the tile's own availability wins.
#[derive(Debug, Clone)]
pub struct RestrictedPolicy<P> {
    inner: P,
    allowed: ModeSet,
}

impl<P: Policy> RestrictedPolicy<P> {
    /// Wraps `inner`, constraining its choices to `allowed`.
    pub fn new(inner: P, allowed: ModeSet) -> RestrictedPolicy<P> {
        assert!(!allowed.is_empty(), "restriction must allow at least one mode");
        RestrictedPolicy { inner, allowed }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for RestrictedPolicy<P> {
    fn name(&self) -> String {
        format!("{}[{}]", self.inner.name(), self.allowed)
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        accel: AccelInstanceId,
    ) -> Decision {
        let constrained = available.intersect(self.allowed);
        let effective = if constrained.is_empty() {
            available
        } else {
            constrained
        };
        self.inner.decide(snapshot, effective, accel)
    }

    fn observe(
        &mut self,
        accel: AccelInstanceId,
        decision: &Decision,
        measurement: &InvocationMeasurement,
    ) {
        self.inner.observe(accel, decision, measurement);
    }

    fn begin_iteration(&mut self, iteration: usize) {
        self.inner.begin_iteration(iteration);
    }

    fn freeze(&mut self) {
        self.inner.freeze();
    }

    fn complexity(&self) -> PolicyComplexity {
        self.inner.complexity()
    }

    fn bind_topology(&mut self, topology: &[(AccelInstanceId, AccelKindId)]) {
        self.inner.bind_topology(topology);
    }

    fn export_table(&self) -> Option<String> {
        self.inner.export_table()
    }

    fn import_table(&mut self, text: &str) -> Result<(), String> {
        self.inner.import_table(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qlearn::LearningSchedule;
    use crate::reward::RewardWeights;
    use crate::snapshot::ArchParams;
    use crate::PartitionId;

    fn snapshot(footprint: u64) -> SystemSnapshot {
        SystemSnapshot::new(
            ArchParams::new(32 * 1024, 256 * 1024, 2),
            vec![],
            footprint,
            vec![PartitionId(0)],
        )
    }

    fn measurement(total: u64) -> InvocationMeasurement {
        InvocationMeasurement {
            total_cycles: total,
            accel_active_cycles: total / 2,
            accel_comm_cycles: total / 4,
            offchip_accesses: 100.0,
            footprint_bytes: 4096,
        }
    }

    #[test]
    fn policy_names_match_figure_legends() {
        assert_eq!(RandomPolicy::new(0).name(), "rand");
        assert_eq!(
            FixedPolicy::new(CoherenceMode::NonCohDma).name(),
            "fixed-non-coh-dma"
        );
        assert_eq!(
            FixedPolicy::new(CoherenceMode::FullCoh).name(),
            "fixed-full-coh"
        );
        let manual = ManualPolicy::new(ManualThresholds {
            extra_small_bytes: 4096,
            l2_bytes: 32 * 1024,
            llc_bytes: 512 * 1024,
        });
        assert_eq!(manual.name(), "manual");
        let coh = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(10),
            0,
        );
        assert_eq!(coh.name(), "cohmeleon");
    }

    #[test]
    fn fixed_policy_always_returns_its_mode() {
        let mut p = FixedPolicy::new(CoherenceMode::CohDma);
        for fp in [1024u64, 1 << 20] {
            let d = p.decide(&snapshot(fp), ModeSet::all(), AccelInstanceId(0));
            assert_eq!(d.mode, CoherenceMode::CohDma);
        }
    }

    #[test]
    fn fixed_policy_falls_back_when_unavailable() {
        let mut p = FixedPolicy::new(CoherenceMode::FullCoh);
        let available = ModeSet::all().without(CoherenceMode::FullCoh);
        let d = p.decide(&snapshot(1024), available, AccelInstanceId(0));
        assert!(available.contains(d.mode));
    }

    #[test]
    fn all_homogeneous_covers_the_four_modes() {
        let modes: Vec<_> = FixedPolicy::all_homogeneous()
            .iter()
            .map(|p| p.mode())
            .collect();
        assert_eq!(modes, CoherenceMode::ALL.to_vec());
    }

    #[test]
    fn random_policy_stays_within_available_and_varies() {
        let mut p = RandomPolicy::new(3);
        let available = ModeSet::all().without(CoherenceMode::FullCoh);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let d = p.decide(&snapshot(1024), available, AccelInstanceId(0));
            assert!(available.contains(d.mode));
            seen[d.mode.index()] = true;
        }
        assert!(!seen[CoherenceMode::FullCoh.index()]);
        assert_eq!(seen.iter().filter(|&&s| s).count(), 3);
    }

    #[test]
    fn heterogeneous_policy_uses_kind_assignment() {
        let mut assignment = HashMap::new();
        assignment.insert(AccelKindId(0), CoherenceMode::NonCohDma);
        assignment.insert(AccelKindId(1), CoherenceMode::FullCoh);
        let mut kind_of = HashMap::new();
        kind_of.insert(AccelInstanceId(10), AccelKindId(0));
        kind_of.insert(AccelInstanceId(11), AccelKindId(1));
        let mut p =
            FixedHeterogeneousPolicy::new(assignment, kind_of, CoherenceMode::LlcCohDma);
        let d0 = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(10));
        assert_eq!(d0.mode, CoherenceMode::NonCohDma);
        let d1 = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(11));
        assert_eq!(d1.mode, CoherenceMode::FullCoh);
        // Unknown instance falls back to the default.
        let d2 = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(99));
        assert_eq!(d2.mode, CoherenceMode::LlcCohDma);
        assert_eq!(p.mode_for_kind(AccelKindId(1)), Some(CoherenceMode::FullCoh));
    }

    #[test]
    fn heterogeneous_clone_preserves_bound_topology() {
        let mut assignment = HashMap::new();
        assignment.insert(AccelKindId(0), CoherenceMode::FullCoh);
        let mut p = FixedHeterogeneousPolicy::new(
            assignment,
            HashMap::new(),
            CoherenceMode::NonCohDma,
        );
        // An instance registered after construction (what the engine's
        // topology binding does) must survive a clone: both route it to
        // its kind's profiled mode, not the catch-all default.
        p.bind_topology(&[(AccelInstanceId(3), AccelKindId(0))]);
        let mut q = p.clone();
        let original = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(3));
        let cloned = q.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(3));
        assert_eq!(original.mode, CoherenceMode::FullCoh);
        assert_eq!(cloned.mode, original.mode);
    }

    #[test]
    fn manual_policy_delegates_to_algorithm1() {
        let mut p = ManualPolicy::new(ManualThresholds {
            extra_small_bytes: 4096,
            l2_bytes: 32 * 1024,
            llc_bytes: 512 * 1024,
        });
        let d = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
        assert_eq!(d.mode, CoherenceMode::FullCoh);
        let d = p.decide(&snapshot(1 << 20), ModeSet::all(), AccelInstanceId(0));
        assert_eq!(d.mode, CoherenceMode::NonCohDma);
    }

    #[test]
    fn cohmeleon_learns_from_observations() {
        let mut p = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(20),
            42,
        );
        // Teach it that CohDma is fast and everything else is slow.
        for i in 0..20 {
            p.begin_iteration(i);
            for _ in 0..30 {
                let d = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
                let total = if d.mode == CoherenceMode::CohDma {
                    1_000
                } else {
                    50_000
                };
                p.observe(AccelInstanceId(0), &d, &measurement(total));
            }
        }
        p.freeze();
        let d = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
        assert_eq!(d.mode, CoherenceMode::CohDma);
    }

    #[test]
    fn frozen_cohmeleon_stops_updating() {
        let mut p = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(10),
            42,
        );
        p.freeze();
        let d = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
        let before = p.table().clone();
        p.observe(AccelInstanceId(0), &d, &measurement(123));
        assert_eq!(&before, p.table());
    }

    #[test]
    fn decision_state_matches_snapshot_sensing() {
        let mut p = RandomPolicy::new(0);
        let snap = snapshot(300 * 1024);
        let d = p.decide(&snap, ModeSet::all(), AccelInstanceId(0));
        assert_eq!(d.state, State::from_snapshot(&snap));
    }

    #[test]
    fn restricted_policy_constrains_choices() {
        let esp_modes = ModeSet::all().without(CoherenceMode::CohDma);
        let mut p = RestrictedPolicy::new(RandomPolicy::new(3), esp_modes);
        assert!(p.name().contains("rand"));
        for _ in 0..100 {
            let d = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
            assert_ne!(d.mode, CoherenceMode::CohDma);
        }
        // When the restriction contradicts tile availability, the tile wins.
        let only_coh = ModeSet::only(CoherenceMode::CohDma);
        let d = p.decide(&snapshot(1024), only_coh, AccelInstanceId(0));
        assert_eq!(d.mode, CoherenceMode::CohDma);
    }

    #[test]
    fn restricted_policy_forwards_complexity() {
        let coh = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(10),
            0,
        );
        let p = RestrictedPolicy::new(coh, ModeSet::all());
        assert_eq!(p.complexity(), PolicyComplexity::Learned);
    }

    #[test]
    fn policy_names_are_stable() {
        // These strings are persisted cell-record coordinates: resumable
        // sweeps and shard merges in `cohmeleon-exp` verify stored
        // records against them, so changing one silently orphans every
        // existing checkpoint and JSONL artifact. See `Policy::name`.
        assert_eq!(FixedPolicy::new(CoherenceMode::NonCohDma).name(), "fixed-non-coh-dma");
        assert_eq!(FixedPolicy::new(CoherenceMode::LlcCohDma).name(), "fixed-llc-coh-dma");
        assert_eq!(FixedPolicy::new(CoherenceMode::CohDma).name(), "fixed-coh-dma");
        assert_eq!(FixedPolicy::new(CoherenceMode::FullCoh).name(), "fixed-full-coh");
        assert_eq!(RandomPolicy::new(0).name(), "rand");
        let cohmeleon = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(10),
            0,
        );
        assert_eq!(cohmeleon.name(), "cohmeleon");
        // The router rebuild must not move the heterogeneous baseline's
        // name (it appears in every persisted paper-suite record).
        let hetero =
            FixedHeterogeneousPolicy::new(HashMap::new(), HashMap::new(), CoherenceMode::NonCohDma);
        assert_eq!(hetero.name(), "fixed-hetero");
        // A router's default label composes scope and sub-agent name;
        // scoped LearnerSpec labels (the `ql[...]` grid coordinates) are
        // pinned in `cohmeleon-exp`.
        let routed = crate::agent::AgentBuilder::paper(10, 0)
            .scope(AgentScope::PerKind)
            .build_routed();
        assert_eq!(routed.name(), "per-kind(learned[table3+eps-greedy+dense+blend])");
    }

    #[test]
    fn policies_are_boxable_trait_objects() {
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(RandomPolicy::new(0)),
            Box::new(FixedPolicy::new(CoherenceMode::NonCohDma)),
            Box::new(CohmeleonPolicy::new(
                RewardWeights::paper_default(),
                LearningSchedule::paper_default(10),
                0,
            )),
        ];
        for mut p in policies {
            let d = p.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
            assert!(ModeSet::all().contains(d.mode));
        }
    }
}
