//! The composable learning agent: [`LearnedPolicy`] assembles a
//! [`StateSpace`], an [`ExplorationStrategy`], a [`ValueStore`] and an
//! [`UpdateRule`] into a [`Policy`].
//!
//! The paper's agent is one point in this space — Table-3 discretization,
//! ε-greedy selection, a dense table and the `(1−α)Q + αR` blend — and is
//! available as the [`CohmeleonPolicy`] type alias, bit-identical to the
//! pre-redesign hardwired implementation (pinned by the golden
//! structural-hash and Q-table TSV tests). Every other composition is an
//! ablation the original code could not express:
//!
//! ```
//! use cohmeleon_core::agent::AgentBuilder;
//! use cohmeleon_core::explore::Softmax;
//! use cohmeleon_core::space::CoarseSpace;
//! use cohmeleon_core::value::SparseQTable;
//! use cohmeleon_core::Policy;
//!
//! // A coarse-state softmax agent over a sparse store, trained for 10
//! // iterations with the paper's reward.
//! let agent = AgentBuilder::paper(10, 7)
//!     .state_space(CoarseSpace)
//!     .exploration(Softmax::default_schedule(10))
//!     .value_store(SparseQTable::with_states(27))
//!     .build();
//! assert_eq!(agent.name(), "learned[coarse+softmax+sparse+blend]");
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::explore::{EpsilonGreedy, ExplorationStrategy, SelectCtx};
use crate::modes::ModeSet;
use crate::policy::{Decision, Policy, PolicyComplexity};
use crate::qlearn::LearningSchedule;
use crate::reward::{InvocationMeasurement, RewardHistory, RewardWeights};
use crate::router::{AgentScope, PolicyRouter};
use crate::snapshot::SystemSnapshot;
use crate::space::{StateSpace, Table3Space};
use crate::state::State;
use crate::update::{BlendUpdate, UpdateRule};
use crate::value::{AutoStore, QTable, ValueStore};
use crate::AccelInstanceId;

/// The learning-based coherence policy, generic over its four components.
///
/// Senses the system, encodes it through the state space, selects a mode
/// through the exploration strategy, and — once the invocation's
/// measurement arrives — converts it to the multi-objective reward of
/// Section 4.2 and feeds it to the update rule. Freezing (the paper's
/// "disable further updates and evaluate") stops both exploration and
/// updates.
#[derive(Debug, Clone)]
pub struct LearnedPolicy<S = Table3Space, E = EpsilonGreedy, V = QTable, U = BlendUpdate> {
    label: String,
    space: S,
    explore: E,
    store: V,
    update: U,
    weights: RewardWeights,
    history: RewardHistory,
    train_iterations: usize,
    frozen: bool,
    rng: SmallRng,
}

/// The paper's agent: Table-3 states, ε-greedy selection, a dense Q-table
/// and the `(1−α)Q + αR` update — the default composition of
/// [`LearnedPolicy`], named for continuity with the paper.
pub type CohmeleonPolicy = LearnedPolicy<Table3Space, EpsilonGreedy, QTable, BlendUpdate>;

impl<S, E, V, U> LearnedPolicy<S, E, V, U>
where
    S: StateSpace,
    E: ExplorationStrategy,
    V: ValueStore,
    U: UpdateRule,
{
    /// Assembles an agent from explicit components.
    ///
    /// `store` must cover at least `space.cardinality()` states. The
    /// `train_iterations` horizon controls when `Policy::begin_iteration`
    /// auto-freezes the agent; component decay schedules are the
    /// components' own business.
    #[allow(clippy::too_many_arguments)]
    pub fn with_components(
        label: impl Into<String>,
        space: S,
        mut explore: E,
        store: V,
        update: U,
        weights: RewardWeights,
        train_iterations: usize,
        seed: u64,
    ) -> LearnedPolicy<S, E, V, U> {
        assert!(
            store.states() >= space.cardinality(),
            "value store covers {} states but the state space needs {}",
            store.states(),
            space.cardinality()
        );
        explore.init(space.cardinality());
        LearnedPolicy {
            label: label.into(),
            space,
            explore,
            store,
            update,
            weights,
            history: RewardHistory::new(),
            train_iterations,
            frozen: false,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The state space in use.
    pub fn state_space(&self) -> &S {
        &self.space
    }

    /// The exploration strategy in use.
    pub fn exploration(&self) -> &E {
        &self.explore
    }

    /// The update rule in use.
    pub fn update_rule(&self) -> &U {
        &self.update
    }

    /// Read access to the learned value store.
    pub fn store(&self) -> &V {
        &self.store
    }

    /// Replaces the value store (e.g. to restore a previously trained
    /// model).
    ///
    /// # Panics
    ///
    /// Panics if the replacement covers fewer states than the state space.
    pub fn set_store(&mut self, store: V) {
        assert!(
            store.states() >= self.space.cardinality(),
            "value store covers {} states but the state space needs {}",
            store.states(),
            self.space.cardinality()
        );
        self.store = store;
    }

    /// The reward weights in use.
    pub fn weights(&self) -> RewardWeights {
        self.weights
    }

    /// Whether learning and exploration are disabled.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }
}

impl CohmeleonPolicy {
    /// Creates an untrained paper-default agent — exactly the original
    /// `CohmeleonPolicy` constructor.
    pub fn new(weights: RewardWeights, schedule: LearningSchedule, seed: u64) -> CohmeleonPolicy {
        LearnedPolicy::with_components(
            "cohmeleon",
            Table3Space,
            EpsilonGreedy::new(schedule.epsilon0, schedule.train_iterations),
            QTable::new(),
            BlendUpdate::new(schedule.alpha0, schedule.train_iterations),
            weights,
            schedule.train_iterations,
            seed,
        )
    }

    /// Read access to the learned Q-table.
    pub fn table(&self) -> &QTable {
        &self.store
    }

    /// Restores a previously trained Q-table (e.g. to evaluate a frozen
    /// model on a different application instance).
    pub fn set_table(&mut self, table: QTable) {
        self.set_store(table);
    }

    /// Current exploration rate (for diagnostics).
    pub fn epsilon(&self) -> f64 {
        if self.frozen {
            0.0
        } else {
            self.explore.epsilon()
        }
    }
}

impl<S, E, V, U> Policy for LearnedPolicy<S, E, V, U>
where
    S: StateSpace,
    E: ExplorationStrategy,
    V: ValueStore,
    U: UpdateRule,
{
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        _accel: AccelInstanceId,
    ) -> Decision {
        assert!(
            !available.is_empty(),
            "policy invoked with an empty set of available coherence modes"
        );
        // Sense once; the space derives its encoding from the shared
        // sensed state where it can (Table-3 sensing is the expensive
        // part of the decide path).
        let state = State::from_snapshot(snapshot);
        let state_index = self.space.encode_sensed(snapshot, &state);
        let ctx = SelectCtx {
            store: &self.store,
            state: state_index,
            available,
            frozen: self.frozen,
        };
        let mode = self.explore.select(ctx, &mut self.rng);
        Decision {
            mode,
            state,
            state_index,
        }
    }

    fn observe(
        &mut self,
        accel: AccelInstanceId,
        decision: &Decision,
        measurement: &InvocationMeasurement,
    ) {
        let components = self.history.record(accel, measurement);
        let reward = self.weights.combine(components);
        if self.frozen {
            return;
        }
        self.update
            .apply(&mut self.store, decision.state_index, decision.mode.index(), reward);
    }

    fn begin_iteration(&mut self, iteration: usize) {
        self.explore.begin_iteration(iteration);
        self.update.begin_iteration(iteration);
        if iteration >= self.train_iterations {
            self.frozen = true;
        }
    }

    fn freeze(&mut self) {
        self.frozen = true;
        self.explore.freeze();
        self.update.freeze();
    }

    fn complexity(&self) -> PolicyComplexity {
        PolicyComplexity::Learned
    }

    fn export_table(&self) -> Option<String> {
        Some(self.store.to_tsv())
    }

    fn import_table(&mut self, text: &str) -> Result<(), String> {
        // Validate the full document against this store's cardinality
        // before touching live state: a malformed line must not leave a
        // warm agent half-wiped. Only then reset (the TSV carries only
        // populated rows — import *replaces*, never overlays) and apply.
        let mut scratch = crate::value::SparseQTable::with_states(self.store.states());
        crate::value::read_tsv_into(text, &mut scratch)?;
        self.store.reset();
        crate::value::read_tsv_into(text, &mut self.store).expect("validated above");
        Ok(())
    }
}

/// Builder-style construction of a [`LearnedPolicy`].
///
/// Starts from the paper's defaults ([`AgentBuilder::paper`]); each
/// component setter swaps the corresponding type parameter. The value
/// store defaults to the right-sized store for the chosen state space
/// (dense [`QTable`]), so swapping the space never leaves a mis-sized
/// table behind.
#[derive(Debug, Clone)]
pub struct AgentBuilder<S = Table3Space, E = EpsilonGreedy, V = QTable, U = BlendUpdate> {
    label: Option<String>,
    space: S,
    explore: E,
    store: Option<V>,
    update: U,
    weights: RewardWeights,
    scope: AgentScope,
    train_iterations: usize,
    seed: u64,
}

impl AgentBuilder {
    /// The paper's composition: Table-3 states, ε-greedy with the paper's
    /// decay over `train_iterations`, a dense table and the blend update.
    /// Built unchanged, this is exactly [`CohmeleonPolicy`].
    pub fn paper(train_iterations: usize, seed: u64) -> AgentBuilder {
        AgentBuilder {
            label: None,
            space: Table3Space,
            explore: EpsilonGreedy::paper(train_iterations),
            store: None,
            update: BlendUpdate::paper(train_iterations),
            weights: RewardWeights::paper_default(),
            scope: AgentScope::Global,
            train_iterations: train_iterations.max(1),
            seed,
        }
    }
}

impl<S, E, V, U> AgentBuilder<S, E, V, U> {
    /// Overrides the display label (defaults to
    /// `learned[space+explore+store+update]`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Overrides the reward weights.
    pub fn weights(mut self, weights: RewardWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Overrides the reward weights — the explicit name for the learner
    /// axis the weight-sensitivity sweeps vary (alias of
    /// [`weights`](Self::weights)).
    pub fn reward_weights(self, weights: RewardWeights) -> Self {
        self.weights(weights)
    }

    /// Sets the agent scope (default [`AgentScope::Global`]). The scope
    /// only takes effect through [`build_routed`](Self::build_routed);
    /// [`build`](Self::build) always assembles the single bare agent.
    pub fn scope(mut self, scope: AgentScope) -> Self {
        self.scope = scope;
        self
    }

    /// Replaces the state space. Any explicitly-set value store is
    /// discarded (it was sized for the previous space); set the store
    /// *after* the space to override it.
    pub fn state_space<S2: StateSpace>(self, space: S2) -> AgentBuilder<S2, E, V, U> {
        AgentBuilder {
            label: self.label,
            space,
            explore: self.explore,
            store: None,
            update: self.update,
            weights: self.weights,
            scope: self.scope,
            train_iterations: self.train_iterations,
            seed: self.seed,
        }
    }

    /// Replaces the exploration strategy.
    pub fn exploration<E2: ExplorationStrategy>(self, explore: E2) -> AgentBuilder<S, E2, V, U> {
        AgentBuilder {
            label: self.label,
            space: self.space,
            explore,
            store: self.store,
            update: self.update,
            weights: self.weights,
            scope: self.scope,
            train_iterations: self.train_iterations,
            seed: self.seed,
        }
    }

    /// Replaces the value store.
    pub fn value_store<V2: ValueStore>(self, store: V2) -> AgentBuilder<S, E, V2, U> {
        AgentBuilder {
            label: self.label,
            space: self.space,
            explore: self.explore,
            store: Some(store),
            update: self.update,
            weights: self.weights,
            scope: self.scope,
            train_iterations: self.train_iterations,
            seed: self.seed,
        }
    }

    /// Replaces the update rule.
    pub fn update_rule<U2: UpdateRule>(self, update: U2) -> AgentBuilder<S, E, V, U2> {
        AgentBuilder {
            label: self.label,
            space: self.space,
            explore: self.explore,
            store: self.store,
            update,
            weights: self.weights,
            scope: self.scope,
            train_iterations: self.train_iterations,
            seed: self.seed,
        }
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Assembles the agent. A store set via
    /// [`value_store`](Self::value_store) is used as-is; otherwise one is
    /// default-constructed for the state space's cardinality.
    pub fn build(self) -> LearnedPolicy<S, E, V, U>
    where
        S: StateSpace,
        E: ExplorationStrategy,
        V: ValueStore + AutoStore,
        U: UpdateRule,
    {
        let store = self
            .store
            .unwrap_or_else(|| V::for_states(self.space.cardinality()));
        let label = self.label.clone().unwrap_or_else(|| {
            format!(
                "learned[{}+{}+{}+{}]",
                self.space.label(),
                self.explore.label(),
                store.label(),
                self.update.label()
            )
        });
        LearnedPolicy::with_components(
            label,
            self.space,
            self.explore,
            store,
            self.update,
            self.weights,
            self.train_iterations,
            self.seed,
        )
    }

    /// Assembles a [`PolicyRouter`] honoring the builder's
    /// [`scope`](Self::scope): one agent of this composition per scope key,
    /// each built from a clone of the builder with the **same** seed, so a
    /// `PerKind`/`PerInstance` router diverges from the equivalent
    /// [`AgentScope::Global`] agent only through state partitioning (each
    /// sub-agent sees exactly its key's invocation subsequence).
    ///
    /// Under [`AgentScope::Global`] the router wraps the single agent
    /// [`build`](Self::build) would produce; routing through it is
    /// bit-identical to using the bare agent (golden-pinned in
    /// `tests/learning.rs`).
    pub fn build_routed(self) -> PolicyRouter
    where
        S: StateSpace + Clone + Sync + 'static,
        E: ExplorationStrategy + Clone + Sync + 'static,
        V: ValueStore + AutoStore + Clone + Sync + 'static,
        U: UpdateRule + Clone + Sync + 'static,
    {
        let scope = self.scope;
        let label = self.label.clone();
        let seed = self.seed;
        let builder = self;
        let mut router = PolicyRouter::new(scope, seed, move |_key, seed| {
            Box::new(builder.clone().seed(seed).build())
        });
        if let Some(label) = label {
            router = router.with_label(label);
        }
        router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Softmax, Ucb1};
    use crate::modes::CoherenceMode;
    use crate::snapshot::ArchParams;
    use crate::space::{CoarseSpace, ExtendedSpace};
    use crate::update::DiscountedUpdate;
    use crate::value::SparseQTable;
    use crate::PartitionId;

    fn snapshot(footprint: u64) -> SystemSnapshot {
        SystemSnapshot::new(
            ArchParams::new(32 * 1024, 256 * 1024, 2),
            vec![],
            footprint,
            vec![PartitionId(0)],
        )
    }

    fn measurement(total: u64) -> InvocationMeasurement {
        InvocationMeasurement {
            total_cycles: total,
            accel_active_cycles: total / 2,
            accel_comm_cycles: total / 4,
            offchip_accesses: 100.0,
            footprint_bytes: 4096,
        }
    }

    fn teach<P: Policy>(policy: &mut P, iterations: usize, good: CoherenceMode) {
        for i in 0..iterations {
            policy.begin_iteration(i);
            for _ in 0..30 {
                let d = policy.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
                let total = if d.mode == good { 1_000 } else { 50_000 };
                policy.observe(AccelInstanceId(0), &d, &measurement(total));
            }
        }
        policy.freeze();
    }

    #[test]
    fn paper_builder_is_cohmeleon() {
        let built = AgentBuilder::paper(5, 3).label("cohmeleon").build();
        let direct = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(5),
            3,
        );
        assert_eq!(built.name(), direct.name());
        // Identical decision streams from identical seeds.
        let (mut a, mut b) = (built, direct);
        for _ in 0..100 {
            assert_eq!(
                a.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0)).mode,
                b.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0)).mode
            );
        }
    }

    #[test]
    fn default_label_composes_component_names() {
        let agent = AgentBuilder::paper(4, 0)
            .state_space(ExtendedSpace)
            .exploration(Ucb1::default())
            .value_store(SparseQTable::with_states(ExtendedSpace.cardinality()))
            .update_rule(DiscountedUpdate::default_schedule(4))
            .build();
        assert_eq!(agent.name(), "learned[extended+ucb1+sparse+discounted]");
    }

    #[test]
    fn builder_resizes_store_for_the_space() {
        let agent = AgentBuilder::paper(4, 0).state_space(CoarseSpace).build();
        assert_eq!(agent.store().num_states(), 27);
        let agent = AgentBuilder::paper(4, 0).state_space(ExtendedSpace).build();
        assert_eq!(agent.store().num_states(), 2187);
    }

    #[test]
    #[should_panic(expected = "value store covers")]
    fn mis_sized_store_is_rejected() {
        let _ = LearnedPolicy::with_components(
            "bad",
            ExtendedSpace,
            EpsilonGreedy::paper(4),
            QTable::new(), // 243 < 2187
            BlendUpdate::paper(4),
            RewardWeights::paper_default(),
            4,
            0,
        );
    }

    #[test]
    fn every_composition_learns_the_planted_best_mode() {
        // 3 spaces × 3 strategies × 2 updates, all driven through the same
        // bandit: every cell must converge to the planted optimum.
        for space_i in 0..3usize {
            for strategy in 0..3usize {
                for update in 0..2usize {
                    let space: Box<dyn StateSpace> = match space_i {
                        0 => Box::new(CoarseSpace),
                        1 => Box::new(Table3Space),
                        _ => Box::new(ExtendedSpace),
                    };
                    let explore: Box<dyn ExplorationStrategy> = match strategy {
                        0 => Box::new(EpsilonGreedy::paper(30)),
                        1 => Box::new(Softmax::default_schedule(30)),
                        _ => Box::new(Ucb1::default()),
                    };
                    let rule: Box<dyn UpdateRule> = match update {
                        0 => Box::new(BlendUpdate::paper(30)),
                        _ => Box::new(DiscountedUpdate::default_schedule(30)),
                    };
                    let states = space.cardinality();
                    let label = format!("{}+{}+{}", space.label(), explore.label(), rule.label());
                    let mut agent = LearnedPolicy::with_components(
                        label.clone(),
                        space,
                        explore,
                        Box::new(SparseQTable::with_states(states)) as Box<dyn ValueStore>,
                        rule,
                        RewardWeights::paper_default(),
                        30,
                        9,
                    );
                    teach(&mut agent, 30, CoherenceMode::CohDma);
                    let d = agent.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
                    assert_eq!(d.mode, CoherenceMode::CohDma, "{label}");
                }
            }
        }
    }

    #[test]
    fn frozen_agent_stops_updating_any_store() {
        let mut agent = AgentBuilder::paper(4, 2)
            .state_space(CoarseSpace)
            .value_store(SparseQTable::with_states(27))
            .build();
        agent.freeze();
        let d = agent.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
        agent.observe(AccelInstanceId(0), &d, &measurement(123));
        assert_eq!(agent.store().populated_entries(), 0);
    }

    #[test]
    fn decision_carries_the_custom_state_index() {
        let mut agent = AgentBuilder::paper(4, 2).state_space(CoarseSpace).build();
        let snap = snapshot(300 * 1024);
        let d = agent.decide(&snap, ModeSet::all(), AccelInstanceId(0));
        assert_eq!(d.state_index, CoarseSpace.encode(&snap));
        // The Table-3 sensed state is still recorded for diagnostics.
        assert_eq!(d.state, State::from_snapshot(&snap));
    }
}
