//! The multi-objective reward function of Section 4.2.
//!
//! After the `i`-th invocation of accelerator `k` completes, the monitors
//! yield an [`InvocationMeasurement`]. Three scaled metrics are derived:
//!
//! * `exec(k,i)` — execution time divided by footprint,
//! * `comm(k,i)` — accelerator communication cycles divided by total active
//!   cycles,
//! * `mem(k,i)` — off-chip accesses divided by footprint,
//!
//! and normalised against the per-accelerator history:
//!
//! ```text
//! R_exec(k,i) = min_{j≤i} exec(k,j) / exec(k,i)
//! R_comm(k,i) = min_{j≤i} comm(k,j) / comm(k,i)
//! R_mem(k,i)  = 1 − (mem(k,i) − min_j mem) / (max_j mem − min_j mem)
//! ```
//!
//! The reward is the weighted sum `R = x·R_exec + y·R_comm + z·R_mem`.
//! All three components lie in `[0, 1]`, larger is better.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cohmeleon_sim::stats::RunningExtrema;

use crate::error::CoreError;
use crate::AccelInstanceId;

/// What the hardware monitors report for one completed invocation
/// (the four metrics of Section 4.1, "Evaluate").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationMeasurement {
    /// Total execution time in cycles, *including* invocation overheads
    /// (device driver, cache flushes, TLB load).
    pub total_cycles: u64,
    /// Cycles in which the accelerator was actively executing.
    pub accel_active_cycles: u64,
    /// Cycles in which the accelerator was communicating with memory
    /// (issuing a request or awaiting a response).
    pub accel_comm_cycles: u64,
    /// Off-chip memory accesses attributed to this invocation. Fractional
    /// because the paper's attribution divides each controller's total among
    /// active accelerators proportionally to footprint.
    pub offchip_accesses: f64,
    /// Memory footprint of the invocation, in bytes.
    pub footprint_bytes: u64,
}

impl InvocationMeasurement {
    /// `exec(k,i)`: execution time scaled by footprint.
    pub fn scaled_exec(&self) -> f64 {
        self.total_cycles as f64 / self.footprint_bytes.max(1) as f64
    }

    /// `comm(k,i)`: fraction of accelerator-active cycles spent
    /// communicating with memory.
    pub fn comm_ratio(&self) -> f64 {
        if self.accel_active_cycles == 0 {
            0.0
        } else {
            self.accel_comm_cycles as f64 / self.accel_active_cycles as f64
        }
    }

    /// `mem(k,i)`: off-chip accesses scaled by footprint.
    pub fn scaled_mem(&self) -> f64 {
        self.offchip_accesses / self.footprint_bytes.max(1) as f64
    }
}

/// The constant weights `(x, y, z)` of the reward function.
///
/// The weights are normalised to sum to 1 at construction, which does not
/// change the induced policy ordering but keeps rewards in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    x: f64,
    y: f64,
    z: f64,
}

impl RewardWeights {
    /// Creates weights for (execution time, communication ratio, off-chip
    /// memory accesses).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRewardWeights`] if any weight is negative
    /// or non-finite, or if all are zero.
    pub fn new(x: f64, y: f64, z: f64) -> Result<RewardWeights, CoreError> {
        let valid = |w: f64| w.is_finite() && w >= 0.0;
        let sum = x + y + z;
        if !(valid(x) && valid(y) && valid(z)) || sum <= 0.0 {
            return Err(CoreError::InvalidRewardWeights { weights: (x, y, z) });
        }
        Ok(RewardWeights {
            x: x / sum,
            y: y / sum,
            z: z / sum,
        })
    }

    /// The configuration used for the cross-SoC experiments in Section 6:
    /// 67.5% execution time, 7.5% communication ratio, 25% off-chip accesses.
    pub fn paper_default() -> RewardWeights {
        RewardWeights::new(0.675, 0.075, 0.25).expect("paper weights are valid")
    }

    /// Weight on `R_exec` (normalised).
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Weight on `R_comm` (normalised).
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Weight on `R_mem` (normalised).
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Combines reward components into the scalar reward, clamped to
    /// `[0, 1]` (normalised weights can overshoot by a rounding ulp).
    pub fn combine(&self, components: RewardComponents) -> f64 {
        (self.x * components.r_exec + self.y * components.r_comm + self.z * components.r_mem)
            .clamp(0.0, 1.0)
    }
}

/// The three reward components for one invocation, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardComponents {
    /// `R_exec(k, i)`.
    pub r_exec: f64,
    /// `R_comm(k, i)`.
    pub r_comm: f64,
    /// `R_mem(k, i)`.
    pub r_mem: f64,
}

/// Per-accelerator history of scaled metrics, backing the `min_{j≤i}` /
/// `max_{j≤i}` terms of the reward definition.
#[derive(Debug, Clone, Default)]
pub struct RewardHistory {
    per_accel: HashMap<AccelInstanceId, AccelHistory>,
}

#[derive(Debug, Clone, Default)]
struct AccelHistory {
    exec: RunningExtrema,
    comm: RunningExtrema,
    mem: RunningExtrema,
    invocations: u64,
}

impl RewardHistory {
    /// An empty history (as at the beginning of training).
    pub fn new() -> RewardHistory {
        RewardHistory::default()
    }

    /// Records the measurement of invocation `i` of accelerator `k` and
    /// returns the reward components. The current invocation participates in
    /// the running extrema (the paper's min/max run over `j ≤ i`), so the
    /// first invocation of an accelerator scores `R_exec = R_comm = R_mem = 1`.
    pub fn record(
        &mut self,
        accel: AccelInstanceId,
        measurement: &InvocationMeasurement,
    ) -> RewardComponents {
        let h = self.per_accel.entry(accel).or_default();
        let exec = measurement.scaled_exec();
        let comm = measurement.comm_ratio();
        let mem = measurement.scaled_mem();
        h.exec.observe(exec);
        h.comm.observe(comm);
        h.mem.observe(mem);
        h.invocations += 1;

        let r_exec = ratio_or_one(h.exec.min().unwrap_or(exec), exec);
        let r_comm = ratio_or_one(h.comm.min().unwrap_or(comm), comm);
        let r_mem = mem_component(mem, h.mem.min().unwrap_or(mem), h.mem.max().unwrap_or(mem));
        RewardComponents {
            r_exec,
            r_comm,
            r_mem,
        }
    }

    /// Number of recorded invocations for `accel`.
    pub fn invocations(&self, accel: AccelInstanceId) -> u64 {
        self.per_accel.get(&accel).map_or(0, |h| h.invocations)
    }

    /// Total recorded invocations across all accelerators.
    pub fn total_invocations(&self) -> u64 {
        self.per_accel.values().map(|h| h.invocations).sum()
    }

    /// Clears the history (used when switching from training to testing on a
    /// fresh application instance is *not* desired — the paper keeps the
    /// history; exposed for experiments).
    pub fn clear(&mut self) {
        self.per_accel.clear();
    }
}

/// `min / current`, defined as 1 when `current` is zero (e.g. a zero
/// communication ratio on a fully compute-bound invocation).
fn ratio_or_one(min: f64, current: f64) -> f64 {
    if current <= 0.0 {
        1.0
    } else {
        (min / current).clamp(0.0, 1.0)
    }
}

/// `R_mem = 1 − (mem − min)/(max − min)`, defined as 1 when `max == min`
/// (including the first invocation), since the paper's formula is 0/0 there
/// and the invocation is trivially "as good as the best seen".
fn mem_component(mem: f64, min: f64, max: f64) -> f64 {
    if max - min <= f64::EPSILON {
        1.0
    } else {
        (1.0 - (mem - min) / (max - min)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(total: u64, active: u64, comm: u64, mem: f64, footprint: u64) -> InvocationMeasurement {
        InvocationMeasurement {
            total_cycles: total,
            accel_active_cycles: active,
            accel_comm_cycles: comm,
            offchip_accesses: mem,
            footprint_bytes: footprint,
        }
    }

    #[test]
    fn scaled_metrics() {
        let m = measurement(1000, 800, 200, 64.0, 100);
        assert_eq!(m.scaled_exec(), 10.0);
        assert_eq!(m.comm_ratio(), 0.25);
        assert_eq!(m.scaled_mem(), 0.64);
    }

    #[test]
    fn comm_ratio_of_idle_accel_is_zero() {
        let m = measurement(1000, 0, 0, 0.0, 100);
        assert_eq!(m.comm_ratio(), 0.0);
    }

    #[test]
    fn weights_normalise() {
        let w = RewardWeights::new(2.0, 1.0, 1.0).unwrap();
        assert!((w.x() - 0.5).abs() < 1e-12);
        assert!((w.y() - 0.25).abs() < 1e-12);
        assert!((w.z() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_default_weights() {
        let w = RewardWeights::paper_default();
        assert!((w.x() - 0.675).abs() < 1e-12);
        assert!((w.y() - 0.075).abs() < 1e-12);
        assert!((w.z() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(RewardWeights::new(0.0, 0.0, 0.0).is_err());
        assert!(RewardWeights::new(-1.0, 1.0, 1.0).is_err());
        assert!(RewardWeights::new(f64::NAN, 1.0, 1.0).is_err());
    }

    #[test]
    fn first_invocation_scores_perfect() {
        let mut h = RewardHistory::new();
        let c = h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 64.0, 100));
        assert_eq!(c.r_exec, 1.0);
        assert_eq!(c.r_comm, 1.0);
        assert_eq!(c.r_mem, 1.0);
    }

    #[test]
    fn slower_invocation_scores_lower_exec() {
        let mut h = RewardHistory::new();
        h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 64.0, 100));
        let c = h.record(AccelInstanceId(0), &measurement(2000, 800, 200, 64.0, 100));
        assert!((c.r_exec - 0.5).abs() < 1e-12);
        // comm and footprint unchanged; mem unchanged ⇒ max == min ⇒ 1.
        assert_eq!(c.r_comm, 1.0);
        assert_eq!(c.r_mem, 1.0);
    }

    #[test]
    fn mem_component_maps_extremes() {
        let mut h = RewardHistory::new();
        h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 0.0, 100));
        h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 100.0, 100));
        // A third invocation at the maximum scores 0, at the minimum scores 1.
        let worst = h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 100.0, 100));
        assert_eq!(worst.r_mem, 0.0);
        let best = h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 0.0, 100));
        assert_eq!(best.r_mem, 1.0);
        let mid = h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 50.0, 100));
        assert!((mid.r_mem - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histories_are_per_accelerator() {
        let mut h = RewardHistory::new();
        h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 64.0, 100));
        // Different accelerator: fresh history, perfect score even if slower.
        let c = h.record(AccelInstanceId(1), &measurement(9000, 800, 200, 64.0, 100));
        assert_eq!(c.r_exec, 1.0);
        assert_eq!(h.invocations(AccelInstanceId(0)), 1);
        assert_eq!(h.invocations(AccelInstanceId(1)), 1);
        assert_eq!(h.total_invocations(), 2);
    }

    #[test]
    fn components_always_in_unit_interval() {
        let mut h = RewardHistory::new();
        let cases = [
            measurement(1, 1, 1, 0.0, 1),
            measurement(u64::MAX / 2, 10, 10, 1e12, 1),
            measurement(5, 0, 0, 3.5, 1 << 40),
            measurement(100, 50, 50, 0.0, 64),
        ];
        for (i, m) in cases.iter().enumerate() {
            for accel in [AccelInstanceId(0), AccelInstanceId(i as u16)] {
                let c = h.record(accel, m);
                for v in [c.r_exec, c.r_comm, c.r_mem] {
                    assert!((0.0..=1.0).contains(&v), "component {v} out of range");
                }
            }
        }
    }

    #[test]
    fn combine_weights_components() {
        let w = RewardWeights::new(1.0, 1.0, 2.0).unwrap();
        let r = w.combine(RewardComponents {
            r_exec: 1.0,
            r_comm: 0.5,
            r_mem: 0.25,
        });
        assert!((r - (0.25 + 0.125 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_history() {
        let mut h = RewardHistory::new();
        h.record(AccelInstanceId(0), &measurement(1000, 800, 200, 64.0, 100));
        h.clear();
        assert_eq!(h.total_invocations(), 0);
    }
}
