//! Algorithm 1: the manually-tuned coherence-mode selection.
//!
//! The paper's authors distilled tens of thousands of accelerator invocations
//! on ESP into an introspective heuristic that minimizes runtime for
//! accelerators in an ESP SoC. It serves as the strongest non-learning
//! baseline ("manual") in every experiment; unlike Cohmeleon it needs manual
//! re-tuning for other architectures (Section 6 shows it falling behind on
//! SoC5).
//!
//! The algorithm, verbatim from the paper:
//!
//! ```text
//! if footprint ≤ EXTRA_SMALL_THRESHOLD:            FULLY-COH
//! else if footprint ≤ CACHE_L2_SIZE:
//!     if active_coh_dma > active_fully_coh:        FULLY-COH
//!     else:                                        COH-DMA
//! else if footprint + active_footprint > CACHE_LLC_SIZE:  NON-COH
//! else:
//!     if active_non_coh ≥ 2:                       LLC-COH-DMA
//!     else:                                        COH-DMA
//! ```

use serde::{Deserialize, Serialize};

use crate::modes::{CoherenceMode, ModeSet};
use crate::snapshot::SystemSnapshot;

/// The tuning constants of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManualThresholds {
    /// `EXTRA_SMALL_THRESHOLD`: below this footprint, always fully-coherent.
    pub extra_small_bytes: u64,
    /// `CACHE_L2_SIZE`: the private-cache capacity.
    pub l2_bytes: u64,
    /// `CACHE_LLC_SIZE`: the aggregate LLC capacity.
    pub llc_bytes: u64,
}

impl ManualThresholds {
    /// Derives the thresholds from architecture parameters, with the
    /// extra-small threshold at 1/8 of the L2 (4 KiB for a 32 KiB L2) —
    /// the tuning that reproduces the paper's decision mix in Figure 7.
    pub fn for_arch(arch: &crate::snapshot::ArchParams) -> ManualThresholds {
        ManualThresholds {
            extra_small_bytes: arch.l2_bytes / 8,
            l2_bytes: arch.l2_bytes,
            llc_bytes: arch.llc_total_bytes(),
        }
    }
}

/// Runs Algorithm 1 on a snapshot and returns its choice, before
/// availability is considered.
pub fn algorithm1(snapshot: &SystemSnapshot, thresholds: &ManualThresholds) -> CoherenceMode {
    let footprint = snapshot.target_footprint;
    let active_footprint = snapshot.active_footprint_bytes();
    let active_coh_dma = snapshot.active_in_mode(CoherenceMode::CohDma);
    let active_fully_coh = snapshot.active_in_mode(CoherenceMode::FullCoh);
    let active_non_coh = snapshot.active_in_mode(CoherenceMode::NonCohDma);

    if footprint <= thresholds.extra_small_bytes {
        CoherenceMode::FullCoh
    } else if footprint <= thresholds.l2_bytes {
        if active_coh_dma > active_fully_coh {
            CoherenceMode::FullCoh
        } else {
            CoherenceMode::CohDma
        }
    } else if footprint + active_footprint > thresholds.llc_bytes {
        CoherenceMode::NonCohDma
    } else if active_non_coh >= 2 {
        CoherenceMode::LlcCohDma
    } else {
        CoherenceMode::CohDma
    }
}

/// Like [`algorithm1`], but degrades to the "closest" available mode when
/// the preferred one is not supported (e.g. fully-coherent on a tile with no
/// private cache). Preference order: the algorithm's choice, then modes in
/// increasing hardware-coherence distance.
pub fn algorithm1_restricted(
    snapshot: &SystemSnapshot,
    thresholds: &ManualThresholds,
    available: ModeSet,
) -> CoherenceMode {
    assert!(!available.is_empty(), "no coherence modes available");
    let preferred = algorithm1(snapshot, thresholds);
    if available.contains(preferred) {
        return preferred;
    }
    // Fallback orders chosen by adjacency in the coherence spectrum of
    // Figure 1 (non-coh ↔ llc-coh ↔ coh-dma ↔ full-coh).
    let order: &[CoherenceMode] = match preferred {
        CoherenceMode::NonCohDma => &[
            CoherenceMode::LlcCohDma,
            CoherenceMode::CohDma,
            CoherenceMode::FullCoh,
        ],
        CoherenceMode::LlcCohDma => &[
            CoherenceMode::NonCohDma,
            CoherenceMode::CohDma,
            CoherenceMode::FullCoh,
        ],
        CoherenceMode::CohDma => &[
            CoherenceMode::LlcCohDma,
            CoherenceMode::FullCoh,
            CoherenceMode::NonCohDma,
        ],
        CoherenceMode::FullCoh => &[
            CoherenceMode::CohDma,
            CoherenceMode::LlcCohDma,
            CoherenceMode::NonCohDma,
        ],
    };
    order
        .iter()
        .copied()
        .find(|m| available.contains(*m))
        .expect("available is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ActiveAccel, ArchParams};
    use crate::{AccelInstanceId, PartitionId};

    fn arch() -> ArchParams {
        // 32 KiB L2, 2 × 256 KiB LLC ⇒ 512 KiB total LLC.
        ArchParams::new(32 * 1024, 256 * 1024, 2)
    }

    fn thresholds() -> ManualThresholds {
        ManualThresholds::for_arch(&arch())
    }

    fn snapshot(active: Vec<ActiveAccel>, footprint: u64) -> SystemSnapshot {
        SystemSnapshot::new(arch(), active, footprint, vec![PartitionId(0)])
    }

    fn running(id: u16, mode: CoherenceMode, bytes: u64) -> ActiveAccel {
        ActiveAccel {
            instance: AccelInstanceId(id),
            mode,
            footprint_bytes: bytes,
            partitions: vec![PartitionId(0)],
        }
    }

    #[test]
    fn thresholds_from_arch() {
        let t = thresholds();
        assert_eq!(t.extra_small_bytes, 4 * 1024);
        assert_eq!(t.l2_bytes, 32 * 1024);
        assert_eq!(t.llc_bytes, 512 * 1024);
    }

    #[test]
    fn extra_small_footprint_goes_fully_coherent() {
        let s = snapshot(vec![], 2 * 1024);
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::FullCoh);
    }

    #[test]
    fn l2_sized_footprint_prefers_coh_dma_when_balanced() {
        let s = snapshot(vec![], 16 * 1024);
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::CohDma);
    }

    #[test]
    fn l2_sized_footprint_balances_against_coh_dma_population() {
        // More coherent-DMA accelerators active than fully-coherent ones
        // ⇒ steer toward fully-coherent to spread load.
        let s = snapshot(
            vec![running(1, CoherenceMode::CohDma, 8 * 1024)],
            16 * 1024,
        );
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::FullCoh);
        // Equal counts ⇒ coherent DMA.
        let s = snapshot(
            vec![
                running(1, CoherenceMode::CohDma, 8 * 1024),
                running(2, CoherenceMode::FullCoh, 8 * 1024),
            ],
            16 * 1024,
        );
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::CohDma);
    }

    #[test]
    fn llc_overflow_goes_non_coherent() {
        // footprint + active_footprint > 512 KiB.
        let s = snapshot(
            vec![running(1, CoherenceMode::CohDma, 400 * 1024)],
            200 * 1024,
        );
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::NonCohDma);
        // A lone 600 KiB invocation also overflows.
        let s = snapshot(vec![], 600 * 1024);
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::NonCohDma);
    }

    #[test]
    fn medium_footprint_avoids_non_coherent_crowd() {
        // Fits in LLC with room; two non-coherent accelerators already
        // hammering DRAM ⇒ LLC-coherent DMA.
        let s = snapshot(
            vec![
                running(1, CoherenceMode::NonCohDma, 16 * 1024),
                running(2, CoherenceMode::NonCohDma, 16 * 1024),
            ],
            100 * 1024,
        );
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::LlcCohDma);
        // Fewer than two ⇒ coherent DMA.
        let s = snapshot(
            vec![running(1, CoherenceMode::NonCohDma, 16 * 1024)],
            100 * 1024,
        );
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::CohDma);
    }

    #[test]
    fn boundary_footprints_are_inclusive() {
        // Exactly the extra-small threshold ⇒ fully coherent.
        let s = snapshot(vec![], 4 * 1024);
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::FullCoh);
        // Exactly L2 size ⇒ the L2 branch, not the LLC branch.
        let s = snapshot(vec![], 32 * 1024);
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::CohDma);
        // Exactly LLC size with nothing active ⇒ not an overflow.
        let s = snapshot(vec![], 512 * 1024);
        assert_eq!(algorithm1(&s, &thresholds()), CoherenceMode::CohDma);
    }

    #[test]
    fn restricted_fallback_prefers_adjacent_mode() {
        let s = snapshot(vec![], 2 * 1024); // wants FullCoh
        let available = ModeSet::all().without(CoherenceMode::FullCoh);
        assert_eq!(
            algorithm1_restricted(&s, &thresholds(), available),
            CoherenceMode::CohDma
        );
        let only_non_coh = ModeSet::only(CoherenceMode::NonCohDma);
        assert_eq!(
            algorithm1_restricted(&s, &thresholds(), only_non_coh),
            CoherenceMode::NonCohDma
        );
    }

    #[test]
    fn restricted_keeps_preferred_when_available() {
        let s = snapshot(vec![], 600 * 1024); // wants NonCohDma
        assert_eq!(
            algorithm1_restricted(&s, &thresholds(), ModeSet::all()),
            CoherenceMode::NonCohDma
        );
    }

    #[test]
    #[should_panic(expected = "no coherence modes available")]
    fn restricted_with_empty_set_panics() {
        let s = snapshot(vec![], 1024);
        algorithm1_restricted(&s, &thresholds(), ModeSet::EMPTY);
    }
}
