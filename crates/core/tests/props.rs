//! Property tests for the Cohmeleon core: state encoding, reward bounds,
//! Q-table dynamics and policy behaviour.

use cohmeleon_core::manual::{algorithm1_restricted, ManualThresholds};
use cohmeleon_core::policy::{CohmeleonPolicy, Policy};
use cohmeleon_core::qlearn::{LearningSchedule, QLearner};
use cohmeleon_core::reward::{InvocationMeasurement, RewardHistory, RewardWeights};
use cohmeleon_core::snapshot::{ActiveAccel, ArchParams, SystemSnapshot};
use cohmeleon_core::{AccelInstanceId, CoherenceMode, ModeSet, PartitionId, State};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = CoherenceMode> {
    (0usize..4).prop_map(CoherenceMode::from_index)
}

fn arb_snapshot() -> impl Strategy<Value = SystemSnapshot> {
    let active = proptest::collection::vec(
        (0u16..32, arb_mode(), 1u64..(8 << 20), 0u16..4),
        0..12,
    );
    (active, 1u64..(16 << 20), 0u16..4).prop_map(|(active, target, tp)| {
        let arch = ArchParams::new(32 * 1024, 256 * 1024, 4);
        let active = active
            .into_iter()
            .enumerate()
            .map(|(i, (_, mode, footprint, p))| ActiveAccel {
                instance: AccelInstanceId(i as u16),
                mode,
                footprint_bytes: footprint,
                partitions: vec![PartitionId(p)],
            })
            .collect();
        SystemSnapshot::new(arch, active, target, vec![PartitionId(tp)])
    })
}

fn arb_measurement() -> impl Strategy<Value = InvocationMeasurement> {
    (1u64..1 << 40, 0u64..1 << 38, 0u64..1 << 36, 0.0f64..1e9, 1u64..1 << 30).prop_map(
        |(total, active, comm, mem, fp)| InvocationMeasurement {
            total_cycles: total,
            accel_active_cycles: active.min(total),
            accel_comm_cycles: comm.min(active.min(total)),
            offchip_accesses: mem,
            footprint_bytes: fp,
        },
    )
}

proptest! {
    /// Every snapshot discretizes to a valid state, and the state index is
    /// a bijection on its range.
    #[test]
    fn snapshot_discretization_is_total(snapshot in arb_snapshot()) {
        let state = State::from_snapshot(&snapshot);
        let idx = state.index();
        prop_assert!(idx < State::COUNT);
        prop_assert_eq!(State::from_index(idx), state);
    }

    /// Reward components are always within [0, 1] for any measurement
    /// sequence, and so is the combined reward for any valid weighting.
    #[test]
    fn rewards_are_bounded(
        measurements in proptest::collection::vec(arb_measurement(), 1..40),
        (x, y, z) in (0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0),
    ) {
        prop_assume!(x + y + z > 0.0);
        let weights = RewardWeights::new(x, y, z).expect("validated above");
        let mut history = RewardHistory::new();
        for m in &measurements {
            let c = history.record(AccelInstanceId(0), m);
            for v in [c.r_exec, c.r_comm, c.r_mem] {
                prop_assert!((0.0..=1.0).contains(&v), "component {v}");
            }
            let r = weights.combine(c);
            prop_assert!((0.0..=1.0).contains(&r), "reward {r}");
        }
    }

    /// Q-values remain within the reward bounds under arbitrary updates.
    #[test]
    fn q_updates_stay_bounded(updates in proptest::collection::vec((0usize..243, 0usize..4, 0.0f64..1.0), 1..300)) {
        let mut learner = QLearner::new(LearningSchedule::paper_default(10), 3);
        for (s, a, r) in updates {
            learner.update(State::from_index(s), CoherenceMode::from_index(a), r);
        }
        for (_, _, q) in learner.table().iter() {
            prop_assert!((0.0..=1.0).contains(&q));
        }
    }

    /// ε-greedy selection always returns an available mode.
    #[test]
    fn choices_respect_availability(mask in 1u8..16, picks in 1usize..50, seed in any::<u64>()) {
        let available = CoherenceMode::ALL
            .into_iter()
            .filter(|m| mask & (1 << m.index()) != 0)
            .fold(ModeSet::EMPTY, ModeSet::with);
        prop_assume!(!available.is_empty());
        let mut learner = QLearner::new(LearningSchedule::paper_default(10), seed);
        for i in 0..picks {
            let m = learner.choose(State::from_index(i % 243), available);
            prop_assert!(available.contains(m));
        }
    }

    /// Algorithm 1 always returns an available mode and is deterministic.
    #[test]
    fn manual_is_total_and_deterministic(snapshot in arb_snapshot(), mask in 1u8..16) {
        let available = CoherenceMode::ALL
            .into_iter()
            .filter(|m| mask & (1 << m.index()) != 0)
            .fold(ModeSet::EMPTY, ModeSet::with);
        prop_assume!(!available.is_empty());
        let thresholds = ManualThresholds::for_arch(&snapshot.arch);
        let a = algorithm1_restricted(&snapshot, &thresholds, available);
        let b = algorithm1_restricted(&snapshot, &thresholds, available);
        prop_assert_eq!(a, b);
        prop_assert!(available.contains(a));
    }

    /// The full Cohmeleon policy round trip (decide + observe) never
    /// produces an unavailable mode or an out-of-range Q value.
    #[test]
    fn cohmeleon_roundtrip_is_sane(
        snapshots in proptest::collection::vec(arb_snapshot(), 1..30),
        measurements in proptest::collection::vec(arb_measurement(), 1..30),
    ) {
        let mut policy = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(5),
            9,
        );
        for (snapshot, m) in snapshots.iter().zip(&measurements) {
            let d = policy.decide(snapshot, ModeSet::all(), AccelInstanceId(1));
            prop_assert!(ModeSet::all().contains(d.mode));
            policy.observe(AccelInstanceId(1), &d, m);
        }
        for (_, _, q) in policy.table().iter() {
            prop_assert!((0.0..=1.0).contains(&q));
        }
    }
}
