//! Integration tests of the composable agent stack: component swaps that
//! must not change behaviour (dense vs. sparse stores), and the frozen
//! contract across every exploration strategy.

use cohmeleon_core::agent::{AgentBuilder, LearnedPolicy};
use cohmeleon_core::explore::{EpsilonGreedy, ExplorationStrategy, Softmax, Ucb1};
use cohmeleon_core::reward::{InvocationMeasurement, RewardWeights};
use cohmeleon_core::snapshot::{ActiveAccel, ArchParams, SystemSnapshot};
use cohmeleon_core::space::{ExtendedSpace, StateSpace, Table3Space};
use cohmeleon_core::update::{BlendUpdate, UpdateRule};
use cohmeleon_core::value::{QTable, SparseQTable, ValueStore};
use cohmeleon_core::{AccelInstanceId, CoherenceMode, ModeSet, PartitionId, Policy};

fn snapshot(footprint: u64, active: usize) -> SystemSnapshot {
    let arch = ArchParams::new(32 * 1024, 256 * 1024, 2);
    let actives = (0..active)
        .map(|i| ActiveAccel {
            instance: AccelInstanceId(100 + i as u16),
            mode: CoherenceMode::ALL[i % 4],
            footprint_bytes: 64 * 1024,
            partitions: vec![PartitionId((i % 2) as u16)],
        })
        .collect();
    SystemSnapshot::new(arch, actives, footprint, vec![PartitionId(0)])
}

fn measurement(total: u64, offchip: f64) -> InvocationMeasurement {
    InvocationMeasurement {
        total_cycles: total,
        accel_active_cycles: total / 2,
        accel_comm_cycles: total / 5,
        offchip_accesses: offchip,
        footprint_bytes: 8192,
    }
}

/// Drives a policy through a deterministic pseudo-random decide/observe
/// stream and returns every decision it made.
fn drive<P: Policy>(policy: &mut P, iterations: usize) -> Vec<CoherenceMode> {
    let mut decisions = Vec::new();
    let mut rng = 0x1234_5678_u64;
    for i in 0..iterations {
        policy.begin_iteration(i);
        for _ in 0..40 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let footprint = 1024 << (rng % 12);
            let active = ((rng >> 16) % 5) as usize;
            let snap = snapshot(footprint, active);
            let d = policy.decide(&snap, ModeSet::all(), AccelInstanceId(0));
            decisions.push(d.mode);
            let total = 10_000 + (rng >> 24) % 100_000;
            let offchip = ((rng >> 32) % 1000) as f64;
            policy.observe(AccelInstanceId(0), &d, &measurement(total, offchip));
        }
    }
    policy.freeze();
    decisions
}

/// Swapping the dense store for the sparse one changes *nothing*: same
/// decisions, same populated entries, byte-identical TSV — on both the
/// paper space and the extended space where sparsity actually matters.
#[test]
fn sparse_and_dense_stores_are_behaviourally_identical() {
    fn check<SP: StateSpace + Clone + std::fmt::Debug>(space: SP) {
        let mut dense = AgentBuilder::paper(6, 42)
            .state_space(space.clone())
            .value_store(QTable::with_states(space.cardinality()))
            .build();
        let mut sparse = AgentBuilder::paper(6, 42)
            .state_space(space.clone())
            .value_store(SparseQTable::with_states(space.cardinality()))
            .build();
        let a = drive(&mut dense, 6);
        let b = drive(&mut sparse, 6);
        assert_eq!(a, b, "{space:?}: decision streams diverged");
        assert!(
            dense.store().populated_entries() > 0,
            "{space:?}: the drive must actually train"
        );
        assert_eq!(
            dense.store().populated_entries(),
            sparse.store().populated_entries()
        );
        assert_eq!(dense.store().to_tsv(), sparse.store().to_tsv());
    }
    check(Table3Space);
    check(ExtendedSpace);
}

/// Frozen agents are pure-greedy for every exploration strategy: identical
/// repeated decisions, no store writes, regardless of the strategy's
/// training-time behaviour.
#[test]
fn frozen_agents_are_greedy_for_every_strategy() {
    fn check<E: ExplorationStrategy + 'static>(explore: E) {
        let label = explore.label();
        let mut agent = AgentBuilder::paper(4, 3).exploration(explore).build();
        drive(&mut agent, 4); // trains, then freezes
        let tsv_before = agent.store().to_tsv();
        let snap = snapshot(4096, 1);
        let first = agent.decide(&snap, ModeSet::all(), AccelInstanceId(0)).mode;
        for _ in 0..50 {
            let d = agent.decide(&snap, ModeSet::all(), AccelInstanceId(0));
            assert_eq!(d.mode, first, "{label}: frozen decisions must not vary");
            agent.observe(AccelInstanceId(0), &d, &measurement(5_000, 10.0));
        }
        assert_eq!(
            agent.store().to_tsv(),
            tsv_before,
            "{label}: frozen agents must not write"
        );
    }
    check(EpsilonGreedy::paper(4));
    check(Softmax::default_schedule(4));
    check(Ucb1::default());
}

/// The whole stack is deterministic under a fixed seed, for dyn-composed
/// agents too.
#[test]
fn dyn_composed_agents_are_deterministic() {
    let make = || {
        LearnedPolicy::with_components(
            "dyn",
            Box::new(ExtendedSpace) as Box<dyn StateSpace>,
            Box::new(Softmax::default_schedule(5)) as Box<dyn ExplorationStrategy>,
            Box::new(SparseQTable::with_states(ExtendedSpace.cardinality()))
                as Box<dyn ValueStore>,
            Box::new(BlendUpdate::paper(5)) as Box<dyn UpdateRule>,
            RewardWeights::paper_default(),
            5,
            777,
        )
    };
    let (mut a, mut b) = (make(), make());
    assert_eq!(drive(&mut a, 5), drive(&mut b, 5));
    assert_eq!(a.store().to_tsv(), b.store().to_tsv());
}
