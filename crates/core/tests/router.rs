//! Scoped-agent orchestration: the `PolicyRouter` against the properties
//! the refactor promises.
//!
//! * A `Global` router is a transparent wrapper: decision streams are
//!   bit-identical to the bare agent (the engine-level golden pin lives
//!   in `tests/learning.rs`).
//! * A `PerKind`/`PerInstance` router with identical sub-agent seeds
//!   diverges from `Global` *only through state partitioning*: each
//!   sub-agent's stream equals a fresh global agent fed exactly its key's
//!   invocation subsequence.
//! * Namespaced table export/import round-trips for every scope.

use proptest::prelude::*;

use cohmeleon_core::agent::AgentBuilder;
use cohmeleon_core::policy::{CohmeleonPolicy, Policy};
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::{InvocationMeasurement, RewardWeights};
use cohmeleon_core::router::{AgentScope, PolicyRouter, ScopeKey};
use cohmeleon_core::snapshot::{ArchParams, SystemSnapshot};
use cohmeleon_core::{AccelInstanceId, AccelKindId, CoherenceMode, ModeSet, PartitionId};

fn snapshot(footprint: u64) -> SystemSnapshot {
    SystemSnapshot::new(
        ArchParams::new(32 * 1024, 256 * 1024, 2),
        vec![],
        footprint,
        vec![PartitionId(0)],
    )
}

fn measurement(total: u64) -> InvocationMeasurement {
    InvocationMeasurement {
        total_cycles: total,
        accel_active_cycles: total / 2,
        accel_comm_cycles: total / 4,
        offchip_accesses: 100.0,
        footprint_bytes: 4096,
    }
}

/// A deterministic synthetic invocation: which instance runs, with what
/// footprint, and how long it "took" (the measurement fed back).
#[derive(Debug, Clone, Copy)]
struct Invocation {
    instance: u16,
    footprint: u64,
    total_cycles: u64,
}

const TOPOLOGY: [(u16, u16); 5] = [(0, 0), (1, 0), (2, 1), (3, 1), (4, 2)];

fn topology() -> Vec<(AccelInstanceId, AccelKindId)> {
    TOPOLOGY
        .iter()
        .map(|&(i, k)| (AccelInstanceId(i), AccelKindId(k)))
        .collect()
}

fn paper_agent(iterations: usize, seed: u64) -> CohmeleonPolicy {
    CohmeleonPolicy::new(
        RewardWeights::paper_default(),
        LearningSchedule::paper_default(iterations),
        seed,
    )
}

/// Drives `policy` through `sequence` (3 training iterations split evenly,
/// then frozen evaluation) and returns every decided mode in order.
fn drive(policy: &mut dyn Policy, sequence: &[Invocation], iterations: usize) -> Vec<CoherenceMode> {
    policy.bind_topology(&topology());
    let mut modes = Vec::with_capacity(sequence.len() * (iterations + 1));
    for i in 0..iterations {
        policy.begin_iteration(i);
        for inv in sequence {
            let d = policy.decide(&snapshot(inv.footprint), ModeSet::all(), AccelInstanceId(inv.instance));
            modes.push(d.mode);
            policy.observe(
                AccelInstanceId(inv.instance),
                &d,
                &measurement(inv.total_cycles),
            );
        }
    }
    policy.freeze();
    for inv in sequence {
        let d = policy.decide(&snapshot(inv.footprint), ModeSet::all(), AccelInstanceId(inv.instance));
        modes.push(d.mode);
    }
    modes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A `Global` router is invisible: identical decision stream to the
    /// bare agent it wraps, invocation for invocation.
    #[test]
    fn global_router_is_bit_identical_to_the_bare_agent(
        raw in proptest::collection::vec((0u16..5, 1u64..(1 << 22), 1_000u64..100_000), 1..40),
        seed in 0u64..1_000,
    ) {
        let sequence: Vec<Invocation> = raw
            .iter()
            .map(|&(instance, footprint, total_cycles)| Invocation { instance, footprint, total_cycles })
            .collect();
        let mut bare = paper_agent(3, seed);
        let mut routed = PolicyRouter::new(AgentScope::Global, seed, move |_, s| {
            Box::new(paper_agent(3, s))
        });
        let expected = drive(&mut bare, &sequence, 3);
        let actual = drive(&mut routed, &sequence, 3);
        prop_assert_eq!(expected, actual);
    }

    /// `PerKind` with identical sub-agent seeds diverges from `Global`
    /// only through state partitioning: for every kind, a fresh global
    /// agent fed exactly that kind's invocation subsequence reproduces
    /// the router's decisions for those invocations.
    #[test]
    fn per_kind_partitions_the_stream_and_nothing_else(
        raw in proptest::collection::vec((0u16..5, 1u64..(1 << 22), 1_000u64..100_000), 1..40),
        seed in 0u64..1_000,
    ) {
        let sequence: Vec<Invocation> = raw
            .iter()
            .map(|&(instance, footprint, total_cycles)| Invocation { instance, footprint, total_cycles })
            .collect();
        let mut routed = PolicyRouter::new(AgentScope::PerKind, seed, move |_, s| {
            Box::new(paper_agent(3, s))
        });
        let routed_modes = drive(&mut routed, &sequence, 3);

        let kind_of = |instance: u16| TOPOLOGY.iter().find(|&&(i, _)| i == instance).unwrap().1;
        for kind in [0u16, 1, 2] {
            // The positions this kind's decisions occupy in the full
            // stream (3 training passes + 1 frozen evaluation pass).
            let mut positions = Vec::new();
            for pass in 0..4 {
                for (j, inv) in sequence.iter().enumerate() {
                    if kind_of(inv.instance) == kind {
                        positions.push(pass * sequence.len() + j);
                    }
                }
            }
            let subsequence: Vec<Invocation> = sequence
                .iter()
                .copied()
                .filter(|inv| kind_of(inv.instance) == kind)
                .collect();
            if subsequence.is_empty() {
                continue;
            }
            let mut solo = paper_agent(3, seed);
            let solo_modes = drive(&mut solo, &subsequence, 3);
            prop_assert_eq!(solo_modes.len(), positions.len());
            for (solo_mode, pos) in solo_modes.iter().zip(&positions) {
                prop_assert_eq!(*solo_mode, routed_modes[*pos], "kind {} position {}", kind, pos);
            }
        }
    }

    /// The same partitioning property at instance granularity.
    #[test]
    fn per_instance_partitions_the_stream_and_nothing_else(
        raw in proptest::collection::vec((0u16..5, 1u64..(1 << 22), 1_000u64..100_000), 1..30),
        seed in 0u64..1_000,
    ) {
        let sequence: Vec<Invocation> = raw
            .iter()
            .map(|&(instance, footprint, total_cycles)| Invocation { instance, footprint, total_cycles })
            .collect();
        let mut routed = PolicyRouter::new(AgentScope::PerInstance, seed, move |_, s| {
            Box::new(paper_agent(3, s))
        });
        let routed_modes = drive(&mut routed, &sequence, 3);

        for instance in 0u16..5 {
            let mut positions = Vec::new();
            for pass in 0..4 {
                for (j, inv) in sequence.iter().enumerate() {
                    if inv.instance == instance {
                        positions.push(pass * sequence.len() + j);
                    }
                }
            }
            let subsequence: Vec<Invocation> = sequence
                .iter()
                .copied()
                .filter(|inv| inv.instance == instance)
                .collect();
            if subsequence.is_empty() {
                continue;
            }
            let mut solo = paper_agent(3, seed);
            let solo_modes = drive(&mut solo, &subsequence, 3);
            for (solo_mode, pos) in solo_modes.iter().zip(&positions) {
                prop_assert_eq!(*solo_mode, routed_modes[*pos], "acc{} position {}", instance, pos);
            }
        }
    }
}

/// Trains a router a little so its tables are non-trivial.
fn trained_router(scope: AgentScope, seed: u64) -> PolicyRouter {
    let mut router = PolicyRouter::new(scope, seed, move |_, s| Box::new(paper_agent(4, s)));
    let sequence: Vec<Invocation> = (0..24)
        .map(|i| Invocation {
            instance: (i % 5) as u16,
            footprint: 1 << (10 + (i % 12)),
            total_cycles: 1_000 + 4_000 * (i % 7) as u64,
        })
        .collect();
    drive(&mut router, &sequence, 4);
    router
}

#[test]
fn namespaced_export_import_round_trips_per_scope() {
    for scope in AgentScope::ALL {
        let router = trained_router(scope, 11);
        let exported = router.export_tables();
        assert!(
            exported.starts_with(&format!("# cohmeleon router tables v1 scope={scope}")),
            "{scope}: {exported}"
        );
        // A fresh, untrained router of the same shape imports the
        // document and re-exports it byte-identically.
        let mut restored =
            PolicyRouter::new(scope, 11, move |_, s| Box::new(paper_agent(4, s)));
        restored.bind_topology(&topology());
        restored.import_tables(&exported).unwrap_or_else(|e| panic!("{scope}: {e}"));
        assert_eq!(restored.export_tables(), exported, "{scope}");

        // And the restored tables drive identical frozen decisions.
        let mut original = trained_router(scope, 11);
        original.freeze();
        restored.freeze();
        for i in 0..5u16 {
            for fp in [1u64 << 10, 1 << 16, 1 << 22] {
                let a = original.decide(&snapshot(fp), ModeSet::all(), AccelInstanceId(i));
                let b = restored.decide(&snapshot(fp), ModeSet::all(), AccelInstanceId(i));
                assert_eq!(a.mode, b.mode, "{scope} acc{i} fp={fp}");
            }
        }
    }
}

#[test]
fn import_replaces_warm_state_instead_of_overlaying() {
    // A router that has meanwhile learned something else must come out
    // of an import holding exactly the imported tables — the TSV only
    // carries populated rows, so this fails if import merely overlays.
    let source = trained_router(AgentScope::PerKind, 11);
    let exported = source.export_tables();
    let mut warm = trained_router(AgentScope::PerKind, 99); // different training
    assert_ne!(warm.export_tables(), exported, "training with another seed differs");
    warm.import_tables(&exported).unwrap();
    assert_eq!(warm.export_tables(), exported);
}

#[test]
fn failed_imports_leave_warm_state_untouched() {
    // Agent level: a corrupt TSV must not wipe a trained table.
    let mut agent = paper_agent(4, 11);
    let snap = snapshot(1024);
    for _ in 0..20 {
        let d = agent.decide(&snap, ModeSet::all(), AccelInstanceId(0));
        agent.observe(AccelInstanceId(0), &d, &measurement(5_000));
    }
    let before = agent.export_table().unwrap();
    assert!(before.lines().count() > 1, "agent learned something");
    let err = agent.import_table("# cohmeleon q-table v1\n0\tnot-a-number\t0\t0\t0\n");
    assert!(err.is_err());
    assert_eq!(agent.export_table().unwrap(), before, "failed import mutated the table");

    // Router level: a document whose *second* section is corrupt must
    // not leave the first section applied (mixed old/new state).
    let mut warm = trained_router(AgentScope::PerKind, 11);
    let before = warm.export_tables();
    let corrupt = "# cohmeleon router tables v1 scope=per-kind\n\
                   ## agent kind0\n# cohmeleon q-table v1\n0\t0.5\t0\t0\t0\n\
                   ## agent kind1\n# cohmeleon q-table v1\n0\tbad\t0\t0\t0\n";
    assert!(warm.import_tables(corrupt).is_err());
    assert_eq!(warm.export_tables(), before, "failed import mutated the router");
}

#[test]
fn import_rejects_duplicate_agent_sections() {
    let source = trained_router(AgentScope::PerKind, 11);
    let exported = source.export_tables();
    let first_section = exported.find("## agent ").unwrap();
    let second_section = exported[first_section + 1..].find("## agent ").unwrap() + first_section + 1;
    // Duplicate the first agent's section at the end of the document.
    let duplicated = format!("{exported}{}", &exported[first_section..second_section]);
    let mut fresh = PolicyRouter::new(AgentScope::PerKind, 11, |_, s| {
        Box::new(paper_agent(4, s))
    });
    let err = fresh.import_tables(&duplicated).unwrap_err();
    assert!(err.contains("duplicate"), "{err}");
}

#[test]
fn export_names_one_section_per_agent() {
    let router = trained_router(AgentScope::PerKind, 3);
    let exported = router.export_tables();
    for key in ["## agent kind0", "## agent kind1", "## agent kind2"] {
        assert!(exported.contains(key), "missing `{key}` in:\n{exported}");
    }
    let router = trained_router(AgentScope::PerInstance, 3);
    let exported = router.export_tables();
    assert_eq!(exported.matches("## agent acc").count(), 5);

    let router = trained_router(AgentScope::Global, 3);
    let exported = router.export_tables();
    assert_eq!(exported.matches("## agent ").count(), 1);
    assert!(exported.contains("## agent global"));
}

#[test]
fn router_table_roundtrips_through_the_policy_trait() {
    // The router's aggregate document flows through the same
    // export_table/import_table seam as a bare agent's TSV, so
    // checkpointing code need not know which it holds.
    let router = trained_router(AgentScope::PerKind, 7);
    let boxed: Box<dyn Policy> = Box::new(trained_router(AgentScope::PerKind, 7));
    let exported = boxed.export_table().expect("router exports");
    assert_eq!(exported, router.export_tables());

    let mut fresh: Box<dyn Policy> = Box::new(PolicyRouter::new(
        AgentScope::PerKind,
        7,
        move |_, s| Box::new(paper_agent(4, s)),
    ));
    fresh.import_table(&exported).expect("import");
    assert_eq!(fresh.export_table().unwrap(), exported);
}

#[test]
fn builder_scope_builds_routers() {
    let router = AgentBuilder::paper(5, 2)
        .scope(AgentScope::PerInstance)
        .build_routed();
    assert_eq!(router.scope(), AgentScope::PerInstance);
    let mut router = router;
    router.bind_topology(&topology());
    assert_eq!(router.num_agents(), 5);
    assert_eq!(
        router.agent_keys().next(),
        Some(ScopeKey::Instance(AccelInstanceId(0)))
    );
    // A Global build_routed wraps exactly one agent.
    let router = AgentBuilder::paper(5, 2).build_routed();
    assert_eq!(router.scope(), AgentScope::Global);
    assert_eq!(router.num_agents(), 1);
}

#[test]
fn late_agents_join_at_the_current_schedule_position() {
    // An instance first invoked at iteration 2 gets an agent whose decay
    // schedules sit at iteration 2 — identical to an agent that idled
    // through iterations 0 and 1.
    let seed = 17;
    let mut router = PolicyRouter::new(AgentScope::PerInstance, seed, move |_, s| {
        Box::new(paper_agent(6, s))
    });
    router.begin_iteration(0);
    router.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(0));
    router.begin_iteration(1);
    router.begin_iteration(2);
    let late = router.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(1));

    let mut reference = paper_agent(6, seed);
    reference.begin_iteration(0);
    reference.begin_iteration(1);
    reference.begin_iteration(2);
    let expected = reference.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(1));
    assert_eq!(late.mode, expected.mode);

    // Agents created after freeze() are frozen on arrival.
    router.freeze();
    let d = router.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(4));
    let mut frozen_ref = paper_agent(6, seed);
    frozen_ref.freeze();
    assert_eq!(
        d.mode,
        frozen_ref.decide(&snapshot(1024), ModeSet::all(), AccelInstanceId(4)).mode
    );
}
