//! Allocation accounting for the router dispatch path.
//!
//! The sense→decide hot path was made allocation-free in earlier
//! optimisation passes (generation-stamped snapshot scratch, pooled
//! buffers); routing must not regress that. This binary installs a
//! counting global allocator and pins two facts:
//!
//! 1. `PerInstance` routing over non-allocating agents performs **zero**
//!    heap allocations per decide/observe once every sub-agent exists —
//!    the dispatch itself (key derivation + `BTreeMap` lookup) never
//!    touches the heap.
//! 2. Routing a learning agent adds **zero** allocations over using the
//!    agent bare: the only allocations on a routed decide are the
//!    agent's own (ε-greedy's tie-break vector), in equal number.
//!
//! The companion throughput number is the `router_dispatch` tracked
//! measurement in `perf_baseline`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cohmeleon_core::policy::{CohmeleonPolicy, FixedPolicy, Policy};
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::{InvocationMeasurement, RewardWeights};
use cohmeleon_core::router::{AgentScope, PolicyRouter};
use cohmeleon_core::snapshot::{ArchParams, SystemSnapshot};
use cohmeleon_core::{AccelInstanceId, AccelKindId, CoherenceMode, ModeSet, PartitionId};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn snapshot(footprint: u64) -> SystemSnapshot {
    SystemSnapshot::new(
        ArchParams::new(32 * 1024, 256 * 1024, 2),
        vec![],
        footprint,
        vec![PartitionId(0)],
    )
}

fn measurement(total: u64) -> InvocationMeasurement {
    InvocationMeasurement {
        total_cycles: total,
        accel_active_cycles: total / 2,
        accel_comm_cycles: total / 4,
        offchip_accesses: 100.0,
        footprint_bytes: 4096,
    }
}

const INSTANCES: u16 = 8;

// A single test function: allocation counts are global state, so the two
// checks run sequentially in one thread.
#[test]
fn per_instance_routing_keeps_the_decide_path_allocation_free() {
    // --- 1. Pure dispatch cost: fixed sub-agents, zero allocations. ---
    let mut router = PolicyRouter::new(AgentScope::PerInstance, 0, |_, _| {
        Box::new(FixedPolicy::new(CoherenceMode::CohDma))
    });
    let topology: Vec<(AccelInstanceId, AccelKindId)> = (0..INSTANCES)
        .map(|i| (AccelInstanceId(i), AccelKindId(i % 3)))
        .collect();
    router.bind_topology(&topology);
    let snap = snapshot(64 * 1024);
    let m = measurement(10_000);
    // Warm-up: every sub-agent exists after bind_topology, but run one
    // full round anyway so any lazily-initialised state settles.
    for i in 0..INSTANCES {
        let d = router.decide(&snap, ModeSet::all(), AccelInstanceId(i));
        router.observe(AccelInstanceId(i), &d, &m);
    }

    // The allocation counter is process-global, so rare background
    // allocations (test-harness bookkeeping) can land inside a measured
    // window and inflate it. Noise only ever *adds* counts and the true
    // per-window count is deterministic, so the minimum over a few
    // repeated windows recovers it.
    let dispatch_allocs = (0..3)
        .map(|_| {
            let before = allocations();
            for round in 0..1_000u64 {
                let i = (round % INSTANCES as u64) as u16;
                let d = router.decide(&snap, ModeSet::all(), AccelInstanceId(i));
                router.observe(AccelInstanceId(i), &d, &m);
            }
            allocations() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        dispatch_allocs, 0,
        "PerInstance dispatch allocated {dispatch_allocs} times in 1000 steady-state rounds"
    );

    // --- 2. Routing a learning agent adds nothing over the bare agent. ---
    fn agent(seed: u64) -> CohmeleonPolicy {
        CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(4),
            seed,
        )
    }

    let run = |policy: &mut dyn Policy, snap: &SystemSnapshot| {
        // Warm-up: first observes materialise per-accelerator reward
        // histories (a HashMap entry each) in both arms.
        for i in 0..INSTANCES {
            let d = policy.decide(snap, ModeSet::all(), AccelInstanceId(i));
            policy.observe(AccelInstanceId(i), &d, &measurement(10_000));
        }
        let before = allocations();
        for round in 0..1_000u64 {
            let i = (round % INSTANCES as u64) as u16;
            let d = policy.decide(snap, ModeSet::all(), AccelInstanceId(i));
            policy.observe(AccelInstanceId(i), &d, &measurement(10_000 + round));
        }
        allocations() - before
    };
    // Every repeat starts from freshly-seeded agents and replays the same
    // measurement sequence, so the true allocation count is identical
    // across repeats of an arm — the minimum strips the (additive-only)
    // background noise before the two arms are compared.
    let bare_allocs = (0..3).map(|_| run(&mut agent(9), &snap)).min().unwrap();
    let routed_allocs = (0..3)
        .map(|_| {
            let mut routed =
                PolicyRouter::new(AgentScope::Global, 9, |_, s| Box::new(agent(s)));
            routed.bind_topology(&topology);
            run(&mut routed, &snap)
        })
        .min()
        .unwrap();
    assert_eq!(
        routed_allocs, bare_allocs,
        "routing added {} allocations over the bare agent",
        routed_allocs as i64 - bare_allocs as i64
    );
}
