//! Cross-check of the two tag-walk modes against the committed goldens.
//!
//! The suite goldens in `suite_goldens.rs` were recorded from the
//! per-line reference implementation and are exercised there under the
//! default run-level walk. This binary replays the soc1 suite with the
//! *process-global* default flipped to `WalkMode::PerLine` and asserts
//! the same hashes — so the reference mode is pinned to the identical
//! observable machine, through the full engine, not just the paired
//! controllers of `crates/cache/tests/batched.rs`. (A separate test
//! binary because the default walk mode is process-global state; the
//! golden tests must not observe the flip.)

use cohmeleon_bench::tracked::{suite_grid, TRAIN_ITERATIONS};
use cohmeleon_cache::{set_default_walk_mode, WalkMode};
use cohmeleon_exp::{CellResult, Serial, SweepGrid};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::GeneratorParams;

fn hashes(grid: &SweepGrid) -> Vec<u64> {
    let mut out = vec![0u64; grid.num_cells()];
    grid.execute(&Serial, &mut |result: CellResult| {
        out[grid.cell_index(result.cell)] = result.result.structural_hash();
    });
    out
}

#[test]
fn per_line_reference_reproduces_the_suite_goldens() {
    let grid = suite_grid(soc1(), &GeneratorParams::quick(), TRAIN_ITERATIONS);
    set_default_walk_mode(WalkMode::PerLine);
    let reference = hashes(&grid);
    set_default_walk_mode(WalkMode::Run);
    let run = hashes(&grid);
    assert_eq!(
        reference,
        vec![0x987c_ae79_cfe3_cc73, 0xe235_0979_6cec_0fca, 0x49cb_7da5_f241_9441],
        "per-line reference moved — modeled behaviour changed"
    );
    assert_eq!(
        run, reference,
        "run-level walk diverged from the per-line reference"
    );
}
