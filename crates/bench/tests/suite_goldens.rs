//! Golden per-cell structural hashes of the tracked perf suites.
//!
//! `perf_baseline` times the soc1 × quick and soc6 × large/extra-large
//! grids; these tests pin every cell's structural hash so hot-path work —
//! the flat-state sense path, equal-timestamp event draining, cache
//! layout changes — fails loudly if it moves modeled behaviour by a
//! single bit. The constants were recorded from the per-pop, map-shaped
//! reference implementation (print them with `--nocapture` after an
//! *intentional* model change to regenerate). These run under the
//! default run-level tag walk; `tests/walk_modes.rs` replays the soc1
//! suite under `WalkMode::PerLine` and pins the same hashes, so both
//! walk modes are anchored to the same recorded machine.

use cohmeleon_bench::tracked::{soc6_params, suite_grid, TRAIN_ITERATIONS};
use cohmeleon_exp::{CellResult, Serial, SweepGrid};
use cohmeleon_soc::config::{soc1, soc6};
use cohmeleon_workloads::generator::GeneratorParams;

fn hashes(grid: &SweepGrid) -> Vec<u64> {
    let mut out = vec![0u64; grid.num_cells()];
    grid.execute(&Serial, &mut |result: CellResult| {
        out[grid.cell_index(result.cell)] = result.result.structural_hash();
    });
    out
}

/// soc1 × quick, [fixed-non-coh-dma, manual, cohmeleon]. The cohmeleon
/// cell's hash equals the agent-stack golden in `tests/learning.rs` —
/// the same protocol through a different entry point.
#[test]
fn soc1_quick_suite_hashes_are_golden() {
    let got = hashes(&suite_grid(soc1(), &GeneratorParams::quick(), TRAIN_ITERATIONS));
    for h in &got {
        println!("soc1 {h:#018x}");
    }
    assert_eq!(
        got,
        vec![0x987c_ae79_cfe3_cc73, 0xe235_0979_6cec_0fca, 0x49cb_7da5_f241_9441],
        "soc1 suite moved — modeled behaviour changed"
    );
}

/// soc6 × large/extra-large (the cache-thrashing regime whose throughput
/// `perf_baseline` tracks as `soc6_scale`), same policy order.
#[test]
fn soc6_large_suite_hashes_are_golden() {
    let got = hashes(&suite_grid(soc6(), &soc6_params(), TRAIN_ITERATIONS));
    for h in &got {
        println!("soc6 {h:#018x}");
    }
    assert_eq!(
        got,
        vec![0x66a6_1b52_9cb7_62f2, 0x193c_f5ec_ba4b_191c, 0x7708_82f6_7f86_feb9],
        "soc6 suite moved — modeled behaviour changed"
    );
}
