//! The *tracked* performance suites: the exact grids `perf_baseline`
//! times and records in `BENCH_hotpath.json`, exposed as a library so
//! tests can pin their per-cell structural hashes. The golden-hash gate
//! (`crates/bench/tests/suite_goldens.rs`) is what lets hot-path
//! refactors — flat-state sensing, batched event draining, cache layout
//! changes — land with proof that modeled behaviour did not move by a
//! single bit.

use cohmeleon_exp::{Experiment, SweepGrid};
use cohmeleon_soc::config::soc1;
use cohmeleon_soc::SocConfig;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::sizes::SizeClass;

use crate::policies::PolicyKind;

/// Policies in the fixed suites, in run order.
pub const SUITE: [PolicyKind; 3] =
    [PolicyKind::FixedNonCoh, PolicyKind::Manual, PolicyKind::Cohmeleon];
/// Train iterations per learning cell of the tracked suites.
pub const TRAIN_ITERATIONS: usize = 2;
/// The tracked suites' single grid seed.
pub const SEED: u64 = 7;
/// Seeds of the executor-speedup grid (cells = seeds × policies).
pub const SWEEP_SEEDS: [u64; 4] = [1, 2, 3, 4];

/// The generator preset of the soc6-scale suite: Large/Extra-Large
/// datasets against soc6's LLC, so recalls, evictions and DRAM bursts
/// dominate (the cache-thrashing regime the quick suite never enters).
pub fn soc6_params() -> GeneratorParams {
    GeneratorParams {
        phases: 2,
        threads: (2, 4),
        chain_len: (1, 2),
        loops: (1, 2),
        size_mix: vec![SizeClass::Large, SizeClass::ExtraLarge],
        check_per_mille: 250,
    }
}

/// Builds the tracked single-seed suite grid for one SoC.
pub fn suite_grid(
    config: SocConfig,
    params: &GeneratorParams,
    train_iterations: usize,
) -> SweepGrid {
    let train = generate_app(&config, params, 1);
    let test = generate_app(&config, params, 2);
    Experiment::train_test(config, train, test)
        .policy_kinds(SUITE)
        .seed(SEED)
        .train_iterations(train_iterations)
        .build()
        .expect("tracked suite is non-empty")
}

/// The executor/shard measurement grid (soc1 × quick over
/// [`SWEEP_SEEDS`]). Deterministic so a `--shard` worker process
/// rebuilds exactly the grid its parent is measuring.
pub fn sweep_grid() -> SweepGrid {
    let config = soc1();
    let train = generate_app(&config, &GeneratorParams::quick(), 1);
    let test = generate_app(&config, &GeneratorParams::quick(), 2);
    Experiment::train_test(config, train, test)
        .policy_kinds(SUITE)
        .seeds(SWEEP_SEEDS)
        .train_iterations(TRAIN_ITERATIONS)
        .build()
        .expect("sweep grid is non-empty")
}
