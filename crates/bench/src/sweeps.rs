//! Named sweep grids for the `sweep` command-line harness.
//!
//! Sharded runs re-execute the current binary, so a worker process must
//! be able to rebuild *exactly* the grid its parent is running from
//! nothing but a name on its command line (grids hold policy-builder
//! closures — no wire format can carry them). This module is that name
//! table: every entry is a deterministic function of `(name, scale)`,
//! which is what makes `sweep run --grid suite --shard 1/3` in a child
//! process meaningful, and what lets a resumed run trust that the
//! checkpoint on disk belongs to the grid being resumed (the checkpoint
//! layer verifies labels and seeds against the rebuilt grid).
//!
//! Each experiment comes with its conventional checkpoint path
//! (`<name>.jsonl`) pre-set via
//! [`Experiment::resume_from`]; the `sweep` binary overrides it when
//! `--out` is given.

use cohmeleon_core::agent::AgentBuilder;
use cohmeleon_core::explore::{Softmax, Ucb1};
use cohmeleon_exp::{AgentScope, Experiment, LearnerSpec, PolicyKind, PolicySpec, WeightPreset};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::figures::{learner_ablation, weight_sensitivity};
use crate::Scale;

/// The available grid names with one-line descriptions (for `--help` and
/// error messages).
pub const GRID_NAMES: &[(&str, &str)] = &[
    (
        "suite",
        "soc1 quick suite: fixed-non-coh-dma/manual/cohmeleon x 4 seeds (train/test)",
    ),
    (
        "learners",
        "the 18-composition learner design space on soc1 (state x explore x update)",
    ),
    (
        "paper",
        "all eight paper policies on soc1 (train/test, one seed)",
    ),
    (
        "scoped",
        "agent orchestration: scope (global/per-kind/per-instance) x weights (paper/balanced)",
    ),
    (
        "weights",
        "Figure-6-style weight sensitivity: (global/per-kind) x all weight presets",
    ),
    (
        "calibration",
        "softmax tau0 {0.05,0.1,0.2,0.4} + ucb1 c {0.5,sqrt2,2} vs the eps-greedy baseline",
    ),
];

/// Builds the named experiment at `scale`. The returned builder still
/// accepts [`Experiment::resume_from`] / [`Experiment::shards`]
/// overrides before [`Experiment::build`].
///
/// # Errors
///
/// Returns a message listing the known names for an unknown `name`.
pub fn named_experiment(name: &str, scale: Scale) -> Result<Experiment, String> {
    let experiment = match name {
        "suite" => suite(scale),
        "learners" => learner_ablation::experiment(scale),
        "paper" => paper(scale),
        "scoped" => scoped(scale),
        "weights" => weight_sensitivity::experiment(scale),
        "calibration" => calibration(scale),
        other => {
            let known: Vec<&str> = GRID_NAMES.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "unknown grid `{other}` (available: {})",
                known.join(", ")
            ));
        }
    };
    Ok(experiment.resume_from(format!("{name}.jsonl")))
}

/// The tracked three-policy suite on SoC1 (the `perf_baseline` regime):
/// small and fast, which makes it the CI resume/shard smoke grid.
fn suite(scale: Scale) -> Experiment {
    let config = soc1();
    let params = scale.pick(
        GeneratorParams::quick(),
        GeneratorParams {
            phases: 1,
            ..GeneratorParams::quick()
        },
    );
    let train = generate_app(&config, &params, 1);
    let test = generate_app(&config, &params, 2);
    Experiment::train_test(config, train, test)
        .policy_kinds([PolicyKind::FixedNonCoh, PolicyKind::Manual, PolicyKind::Cohmeleon])
        .seeds([1, 2, 3, 4])
        .train_iterations(scale.pick(2, 1))
}

/// The scoped-orchestration smoke grid: every [`AgentScope`] × two weight
/// presets over the paper's component composition — small enough for the
/// CI resume/shard smoke, wide enough that every routing path (global,
/// per-kind, per-instance) and a reweighted learner appear as checkpoint
/// cells.
fn scoped(scale: Scale) -> Experiment {
    let config = soc1();
    let params = scale.pick(
        GeneratorParams::quick(),
        GeneratorParams {
            phases: 1,
            ..GeneratorParams::quick()
        },
    );
    let train = generate_app(&config, &params, 1);
    let test = generate_app(&config, &params, 2);
    Experiment::train_test(config, train, test)
        .learners(LearnerSpec::scope_weight_grid(
            &AgentScope::ALL,
            &[WeightPreset::Paper, WeightPreset::Balanced],
        ))
        .seed(5)
        .train_iterations(scale.pick(2, 1))
}

/// The Softmax-τ₀ ∈ {0.05, 0.1, 0.2, 0.4} and UCB1-c ∈ {0.5, √2, 2}
/// calibration points, each an `(stable label, constant)` pair. Labels
/// are persisted cell-record coordinates — never rename one.
pub const CALIBRATION_TAU0: [(&str, f64); 4] = [
    ("softmax-t0.05", 0.05),
    ("softmax-t0.1", 0.1),
    ("softmax-t0.2", Softmax::DEFAULT_TAU0),
    ("softmax-t0.4", 0.4),
];

/// The UCB1 exploration constants of the calibration grid (see
/// [`CALIBRATION_TAU0`]). `ucb1-c1.414` is the default c = √2.
pub const CALIBRATION_C: [(&str, f64); 3] = [
    ("ucb1-c0.5", 0.5),
    ("ucb1-c1.414", Ucb1::DEFAULT_C),
    ("ucb1-c2", 2.0),
];

/// The exploration-constant calibration grid (ROADMAP "Softmax/UCB
/// tuning"): the paper composition with Softmax at each τ₀, UCB1 at each
/// c, and the ε-greedy paper agent as the baseline cell (policy 0), over
/// three seeds so a constant must win on average, not by luck. The
/// findings are recorded next to `DEFAULT_TAU0`/`DEFAULT_C` in
/// `cohmeleon_core::explore`.
fn calibration(scale: Scale) -> Experiment {
    let config = soc1();
    let params = scale.pick(GeneratorParams::coverage(), GeneratorParams::quick());
    let train = generate_app(&config, &params, 1);
    let test = generate_app(&config, &params, 2);
    let softmax_arms = CALIBRATION_TAU0.iter().map(|&(label, tau0)| {
        PolicySpec::custom(label, move |_config, iters, seed| {
            Box::new(
                AgentBuilder::paper(iters, seed)
                    .exploration(Softmax::new(tau0, iters))
                    .label(label)
                    .build(),
            )
        })
    });
    let ucb_arms = CALIBRATION_C.iter().map(|&(label, c)| {
        PolicySpec::custom(label, move |_config, iters, seed| {
            Box::new(
                AgentBuilder::paper(iters, seed)
                    .exploration(Ucb1::new(c))
                    .label(label)
                    .build(),
            )
        })
    });
    Experiment::train_test(config, train, test)
        .policy_kinds([PolicyKind::Cohmeleon])
        .policies(softmax_arms)
        .policies(ucb_arms)
        .seeds([1, 2, 3])
        .train_iterations(scale.pick(10, 2))
}

/// The full eight-policy comparison on SoC1.
fn paper(scale: Scale) -> Experiment {
    let config = soc1();
    let params = scale.pick(GeneratorParams::coverage(), GeneratorParams::quick());
    let train = generate_app(&config, &params, 1);
    let test = generate_app(&config, &params, 2);
    Experiment::train_test(config, train, test)
        .policy_kinds(PolicyKind::ALL)
        .seed(7)
        .train_iterations(scale.pick(10, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_grid_builds() {
        for (name, _) in GRID_NAMES {
            let grid = named_experiment(name, Scale::Fast)
                .unwrap()
                .build()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(grid.num_cells() > 0, "{name}");
            assert_eq!(
                grid.resume_path().unwrap().to_str().unwrap(),
                format!("{name}.jsonl"),
                "{name} carries its conventional checkpoint path"
            );
        }
    }

    #[test]
    fn unknown_names_list_the_alternatives() {
        let err = named_experiment("nope", Scale::Fast).unwrap_err();
        assert!(err.contains("suite") && err.contains("learners"), "{err}");
    }

    #[test]
    fn rebuilding_a_named_grid_is_deterministic() {
        // The shard-worker contract: a child process rebuilding the grid
        // by name must get bit-identical cells.
        let a = named_experiment("suite", Scale::Fast).unwrap().build().unwrap();
        let b = named_experiment("suite", Scale::Fast).unwrap().build().unwrap();
        let cell = cohmeleon_exp::CellId {
            scenario: 0,
            policy: 0,
            seed: 1,
        };
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(
            a.run_cell(cell).result.structural_hash(),
            b.run_cell(cell).result.structural_hash()
        );
    }
}
