//! Named sweep grids for the `sweep` command-line harness.
//!
//! Sharded runs re-execute the current binary, so a worker process must
//! be able to rebuild *exactly* the grid its parent is running from
//! nothing but a name on its command line (grids hold policy-builder
//! closures — no wire format can carry them). This module is that name
//! table: every entry is a deterministic function of `(name, scale)`,
//! which is what makes `sweep run --grid suite --shard 1/3` in a child
//! process meaningful, and what lets a resumed run trust that the
//! checkpoint on disk belongs to the grid being resumed (the checkpoint
//! layer verifies labels and seeds against the rebuilt grid).
//!
//! Each experiment comes with its conventional checkpoint path
//! (`<name>.jsonl`) pre-set via
//! [`Experiment::resume_from`]; the `sweep` binary overrides it when
//! `--out` is given.

use cohmeleon_exp::{Experiment, PolicyKind};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::figures::learner_ablation;
use crate::Scale;

/// The available grid names with one-line descriptions (for `--help` and
/// error messages).
pub const GRID_NAMES: &[(&str, &str)] = &[
    (
        "suite",
        "soc1 quick suite: fixed-non-coh-dma/manual/cohmeleon x 4 seeds (train/test)",
    ),
    (
        "learners",
        "the 18-composition learner design space on soc1 (state x explore x update)",
    ),
    (
        "paper",
        "all eight paper policies on soc1 (train/test, one seed)",
    ),
];

/// Builds the named experiment at `scale`. The returned builder still
/// accepts [`Experiment::resume_from`] / [`Experiment::shards`]
/// overrides before [`Experiment::build`].
///
/// # Errors
///
/// Returns a message listing the known names for an unknown `name`.
pub fn named_experiment(name: &str, scale: Scale) -> Result<Experiment, String> {
    let experiment = match name {
        "suite" => suite(scale),
        "learners" => learner_ablation::experiment(scale),
        "paper" => paper(scale),
        other => {
            let known: Vec<&str> = GRID_NAMES.iter().map(|(n, _)| *n).collect();
            return Err(format!(
                "unknown grid `{other}` (available: {})",
                known.join(", ")
            ));
        }
    };
    Ok(experiment.resume_from(format!("{name}.jsonl")))
}

/// The tracked three-policy suite on SoC1 (the `perf_baseline` regime):
/// small and fast, which makes it the CI resume/shard smoke grid.
fn suite(scale: Scale) -> Experiment {
    let config = soc1();
    let params = scale.pick(
        GeneratorParams::quick(),
        GeneratorParams {
            phases: 1,
            ..GeneratorParams::quick()
        },
    );
    let train = generate_app(&config, &params, 1);
    let test = generate_app(&config, &params, 2);
    Experiment::train_test(config, train, test)
        .policy_kinds([PolicyKind::FixedNonCoh, PolicyKind::Manual, PolicyKind::Cohmeleon])
        .seeds([1, 2, 3, 4])
        .train_iterations(scale.pick(2, 1))
}

/// The full eight-policy comparison on SoC1.
fn paper(scale: Scale) -> Experiment {
    let config = soc1();
    let params = scale.pick(GeneratorParams::coverage(), GeneratorParams::quick());
    let train = generate_app(&config, &params, 1);
    let test = generate_app(&config, &params, 2);
    Experiment::train_test(config, train, test)
        .policy_kinds(PolicyKind::ALL)
        .seed(7)
        .train_iterations(scale.pick(10, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_grid_builds() {
        for (name, _) in GRID_NAMES {
            let grid = named_experiment(name, Scale::Fast)
                .unwrap()
                .build()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(grid.num_cells() > 0, "{name}");
            assert_eq!(
                grid.resume_path().unwrap().to_str().unwrap(),
                format!("{name}.jsonl"),
                "{name} carries its conventional checkpoint path"
            );
        }
    }

    #[test]
    fn unknown_names_list_the_alternatives() {
        let err = named_experiment("nope", Scale::Fast).unwrap_err();
        assert!(err.contains("suite") && err.contains("learners"), "{err}");
    }

    #[test]
    fn rebuilding_a_named_grid_is_deterministic() {
        // The shard-worker contract: a child process rebuilding the grid
        // by name must get bit-identical cells.
        let a = named_experiment("suite", Scale::Fast).unwrap().build().unwrap();
        let b = named_experiment("suite", Scale::Fast).unwrap().build().unwrap();
        let cell = cohmeleon_exp::CellId {
            scenario: 0,
            policy: 0,
            seed: 1,
        };
        assert_eq!(a.num_cells(), b.num_cells());
        assert_eq!(
            a.run_cell(cell).result.structural_hash(),
            b.run_cell(cell).result.structural_hash()
        );
    }
}
