//! Experiment scale selection.

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale workloads and training schedules.
    Full,
    /// Reduced workloads/iterations for smoke runs and CI
    /// (`COHMELEON_FAST=1`).
    Fast,
}

impl Scale {
    /// Reads the scale from the `COHMELEON_FAST` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("COHMELEON_FAST") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Fast,
            _ => Scale::Full,
        }
    }

    /// Picks `full` or `fast` according to the scale.
    pub fn pick<T>(self, full: T, fast: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Fast => fast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Full.pick(10, 2), 10);
        assert_eq!(Scale::Fast.pick(10, 2), 2);
    }
}
