//! Regenerates table4 of the paper.

fn main() {
    cohmeleon_bench::figures::table4::print();
}
