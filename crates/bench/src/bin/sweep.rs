//! `sweep` — run, resume, shard and merge grid sweeps from the command
//! line.
//!
//! ```text
//! sweep run    --grid NAME [--out PATH] [--executor serial|work-stealing]
//!              [--max-cells N] [--fresh] [--shard I/N] [--reuse OLD.jsonl]
//! sweep resume --grid NAME [--out PATH] [--executor ...]
//! sweep shard  --grid NAME --shards N [--out PATH] [--dir DIR]
//! sweep merge  --out PATH [--grid NAME] FILE...
//! sweep queen  --grid NAME --listen ADDR [--resume PATH] [--chunk N]
//!              [--ttl-ms MS] [--max-cells N] [--fresh] [--status-ms MS]
//!              [--chaos-seed N]
//! sweep worker --connect ADDR [--name LABEL] [--retry-ms MS]
//!              [--chaos-seed N]
//! sweep freeze --grid NAME --out SNAP.tsv [--cell I | --scenario L
//!              --policy L --seed N]
//! sweep serve  --table SNAP.tsv --listen ADDR [--states N] [--chaos-seed N]
//! sweep clients --connect ADDR [-n N] [--batches N] [--batch N] [--seed N]
//!              [--verify F1,F2] [--swap PATH [--swap-after J]]
//!              [--hist OUT.jsonl] [--shutdown] [--chaos-seed N]
//! ```
//!
//! * `run` is resumable by default: cells already in the checkpoint at
//!   `--out` (default `<grid>.jsonl`) are skipped, fresh cells are
//!   appended with an fsync each, and a completed run finalises the file
//!   in canonical order — byte-identical to an uninterrupted serial run.
//!   `--max-cells N` stops after N fresh cells (the deterministic
//!   stand-in for a kill; CI uses it for the resume smoke), `--fresh`
//!   deletes the checkpoint first.
//! * `resume` is `run` spelled for humans reading a script.
//! * `shard` re-executes this binary once per shard (`run --grid NAME
//!   --shard i/n --out DIR/shard-i.jsonl`), waits, merges the shard
//!   files (verifying every cell exactly once, each owned by its
//!   writer), and writes the canonical stream to `--out`. Workers
//!   inherit the environment, so `COHMELEON_FAST=1` propagates.
//! * `merge` folds already-written shard/partial files into one
//!   canonical stream; with `--grid` it also verifies completeness
//!   against that grid.
//! * `queen` serves the named grid over TCP to `worker` processes on
//!   other hosts (or this one): contiguous cell ranges are leased out,
//!   completed records stream back and are checkpointed exactly as `run`
//!   does, silent workers get their shards speculatively re-leased, and
//!   a killed queen re-run on the same `--resume` path picks up where it
//!   stopped. `worker` connects, rebuilds the grid the queen names, and
//!   works leases until the queen says done. See the "Fleet" section of
//!   docs/ARCHITECTURE.md.
//! * `run --reuse OLD.jsonl` seeds the checkpoint from a *different*
//!   (smaller) grid's finished file by content key (scenario label,
//!   policy label, seed), so growing a grid recomputes only new cells.
//! * `freeze` runs one cell of the named grid and writes the trained
//!   policy's frozen tables as a provenance-stamped TSV snapshot (grid
//!   name, cell coordinates, structural hash — see
//!   [`SnapshotMeta`]), ready for `serve`.
//! * `serve` loads a frozen snapshot and answers batched `DECIDE`
//!   requests over the `serve/1` line protocol until a client sends
//!   `SHUTDOWN`; a `SWAP` installs a new snapshot atomically without
//!   dropping in-flight requests. `clients` is the matching load
//!   generator: N connections hammer the server, optionally re-checking
//!   every response against local dispatch (`--verify`) and exercising a
//!   hot swap mid-traffic (`--swap`). See the "Serving" section of
//!   docs/ARCHITECTURE.md.
//! * `--chaos-seed N` (on `queen`, `worker`, `serve`, `clients`) wraps
//!   that process's sockets in the seeded fault-injecting transport from
//!   `cohmeleon-chaos`: split writes, read stalls, abrupt resets,
//!   duplicated fire-and-forget lines, reordered heartbeats. Every
//!   injected fault is logged with its `(seed, conn, op)` coordinate and
//!   the same seed replays the same schedule — see the "Chaos testing"
//!   section of docs/ARCHITECTURE.md.
//!
//! Grid names are deterministic functions of `(name, COHMELEON_FAST)` —
//! see `cohmeleon_bench::sweeps` for why that is load-bearing. The
//! queen's scale wins for fleet runs: workers rebuild at whatever scale
//! the queen's HELLO names, regardless of their own environment.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cohmeleon_bench::sweeps::{named_experiment, GRID_NAMES};
use cohmeleon_chaos::FaultPlan;
use cohmeleon_bench::Scale;
use cohmeleon_exp::{
    canonical_jsonl, merge_files, Checkpoint, ResumeOutcome, Serial, ShardExecutor, ShardSpec,
    SweepGrid, WorkStealing,
};
use cohmeleon_core::FrozenSnapshot;
use cohmeleon_exp::{write_snapshot, SnapshotMeta};
use cohmeleon_fleet::{run_queen, run_worker, QueenOptions, WorkerOptions};
use cohmeleon_serve::{run_load, run_server, LoadOptions, ServeClient, ServeOptions, SwapPlan};

fn usage() -> String {
    let mut out = String::from(
        "usage:\n  sweep run    --grid NAME [--out PATH] [--executor serial|work-stealing]\n               [--max-cells N] [--fresh] [--shard I/N] [--reuse OLD.jsonl]\n  sweep resume --grid NAME [--out PATH] [--executor ...]\n  sweep shard  --grid NAME --shards N [--out PATH] [--dir DIR]\n  sweep merge  --out PATH [--grid NAME] FILE...\n  sweep queen  --grid NAME --listen ADDR [--resume PATH] [--chunk N]\n               [--ttl-ms MS] [--max-cells N] [--fresh] [--status-ms MS]\n               [--chaos-seed N]\n  sweep worker --connect ADDR [--name LABEL] [--retry-ms MS] [--chaos-seed N]\n  sweep freeze --grid NAME --out SNAP.tsv\n               [--cell I | --scenario LABEL --policy LABEL --seed N]\n  sweep serve  --table SNAP.tsv --listen ADDR [--states N] [--chaos-seed N]\n  sweep clients --connect ADDR [-n N] [--batches N] [--batch N] [--seed N]\n               [--verify FILE,FILE] [--swap PATH [--swap-after J]]\n               [--hist OUT.jsonl] [--shutdown] [--chaos-seed N]\n\ngrids (COHMELEON_FAST=1 for reduced scale):\n",
    );
    for (name, what) in GRID_NAMES {
        out.push_str(&format!("  {name:<10} {what}\n"));
    }
    out
}

/// Parses the value of a `--chaos-seed N` flag into a fault plan.
fn parse_chaos_seed(value: Option<&String>) -> Result<FaultPlan, String> {
    let seed: u64 = value
        .ok_or("--chaos-seed needs a seed")?
        .parse()
        .map_err(|e| format!("--chaos-seed: {e}"))?;
    Ok(FaultPlan::new(seed))
}

/// The two in-process executors, chosen by `--executor`.
enum Exec {
    Serial,
    WorkStealing,
}

impl Exec {
    fn parse(s: &str) -> Result<Exec, String> {
        match s {
            "serial" => Ok(Exec::Serial),
            "work-stealing" | "worksteal" | "steal" => Ok(Exec::WorkStealing),
            other => Err(format!("unknown executor `{other}`")),
        }
    }

    fn run_resumable(
        &self,
        grid: &SweepGrid,
        path: &Path,
        max_cells: usize,
    ) -> std::io::Result<ResumeOutcome> {
        match self {
            Exec::Serial => grid.run_resumable_capped(path, &Serial, max_cells),
            Exec::WorkStealing => grid.run_resumable_capped(path, &WorkStealing::new(), max_cells),
        }
    }
}

struct CommonArgs {
    grid: String,
    out: Option<PathBuf>,
    executor: Exec,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" | "resume" => cmd_run(rest),
        "shard" => cmd_shard(rest),
        "merge" => cmd_merge(rest),
        "queen" => cmd_queen(rest),
        "worker" => cmd_worker(rest),
        "freeze" => cmd_freeze(rest),
        "serve" => cmd_serve(rest),
        "clients" => cmd_clients(rest),
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the named grid with the checkpoint path resolved: `--out`
/// overrides the grid's conventional `<name>.jsonl`.
fn build_grid(common: &CommonArgs) -> Result<(SweepGrid, PathBuf), String> {
    let mut experiment = named_experiment(&common.grid, Scale::from_env())?;
    if let Some(out) = &common.out {
        experiment = experiment.resume_from(out);
    }
    let grid = experiment.build().map_err(|e| e.to_string())?;
    let out = grid
        .resume_path()
        .expect("named experiments always carry a checkpoint path")
        .to_owned();
    Ok((grid, out))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut common = CommonArgs {
        grid: String::new(),
        out: None,
        executor: Exec::WorkStealing,
    };
    let mut max_cells = usize::MAX;
    let mut fresh = false;
    let mut shard: Option<ShardSpec> = None;
    let mut reuse: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => common.grid = it.next().ok_or("--grid needs a name")?.clone(),
            "--out" => common.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--executor" => {
                common.executor = Exec::parse(it.next().ok_or("--executor needs a name")?)?;
            }
            "--max-cells" => {
                max_cells = it
                    .next()
                    .ok_or("--max-cells needs a count")?
                    .parse()
                    .map_err(|e| format!("--max-cells: {e}"))?;
            }
            "--fresh" => fresh = true,
            "--shard" => {
                shard = Some(
                    it.next()
                        .ok_or("--shard needs I/N")?
                        .parse()
                        .map_err(|e: cohmeleon_exp::shard::ParseShardSpecError| e.to_string())?,
                );
            }
            "--reuse" => {
                reuse = Some(PathBuf::from(it.next().ok_or("--reuse needs a path")?));
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if common.grid.is_empty() {
        return Err(format!("--grid is required\n{}", usage()));
    }
    if shard.is_some() && common.out.is_none() {
        // Without this, a worker would clobber the grid's default
        // checkpoint file with one shard's slice.
        return Err("--shard requires an explicit --out".into());
    }
    if shard.is_some() && reuse.is_some() {
        return Err("--reuse seeds a checkpoint; shard workers don't keep one".into());
    }
    let (grid, out) = build_grid(&common)?;

    if let Some(shard) = shard {
        // Worker mode: run exactly the owned cells serially and write
        // this shard's canonical slice (workers are processes — the
        // parallelism is between them, not inside them).
        let records = grid.collect_shard_records(shard, &Serial);
        std::fs::write(&out, canonical_jsonl(&records))
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!(
            "sweep: shard {shard} of `{}`: wrote {} of {} cells to {}",
            common.grid,
            records.len(),
            grid.num_cells(),
            out.display()
        );
        return Ok(());
    }

    if fresh {
        match std::fs::remove_file(&out) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot remove {}: {e}", out.display())),
        }
    }

    if let Some(old) = &reuse {
        let report = Checkpoint::reuse_from(&out, old, &grid)
            .map_err(|e| format!("--reuse {}: {e}", old.display()))?;
        println!(
            "sweep: reused {} cells from {} ({} unmatched, {} already present)",
            report.reused,
            old.display(),
            report.unmatched,
            report.already
        );
    }

    let outcome = common
        .executor
        .run_resumable(&grid, &out, max_cells)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    if outcome.dropped_tail {
        println!("sweep: dropped a torn tail line (cell re-run)");
    }
    println!(
        "sweep: `{}`: {} cells reused, {} run → {}",
        common.grid,
        outcome.reused,
        outcome.ran,
        out.display()
    );
    if !outcome.complete {
        println!(
            "sweep: interrupted at --max-cells {max_cells}; finish with `sweep resume --grid {} --out {}`",
            common.grid,
            out.display()
        );
    }
    Ok(())
}

fn cmd_shard(args: &[String]) -> Result<(), String> {
    let mut common = CommonArgs {
        grid: String::new(),
        out: None,
        executor: Exec::Serial,
    };
    let mut shards = 0usize;
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => common.grid = it.next().ok_or("--grid needs a name")?.clone(),
            "--out" => common.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a count")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--dir" => dir = Some(PathBuf::from(it.next().ok_or("--dir needs a path")?)),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if common.grid.is_empty() {
        return Err(format!("--grid is required\n{}", usage()));
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let (grid, out) = build_grid(&common)?;
    let dir = dir.unwrap_or_else(|| {
        let mut d = out.as_os_str().to_owned();
        d.push(".shards");
        PathBuf::from(d)
    });

    let grid_name = common.grid.clone();
    let records = ShardExecutor::new(shards)
        .run(&grid, &dir, |shard, shard_out| {
            vec![
                "run".to_owned(),
                "--grid".to_owned(),
                grid_name.clone(),
                "--shard".to_owned(),
                shard.to_string(),
                "--out".to_owned(),
                shard_out.display().to_string(),
            ]
        })
        .map_err(|e| e.to_string())?;
    std::fs::write(&out, canonical_jsonl(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "sweep: `{}` over {shards} worker processes: merged {} cells to {} (shard files in {})",
        common.grid,
        records.len(),
        out.display(),
        dir.display()
    );
    Ok(())
}

fn cmd_queen(args: &[String]) -> Result<(), String> {
    let mut common = CommonArgs {
        grid: String::new(),
        out: None,
        executor: Exec::Serial, // unused: workers execute the cells
    };
    let mut listen = String::new();
    let mut chunk: Option<usize> = None;
    let mut ttl_ms = 10_000u64;
    let mut max_cells = usize::MAX;
    let mut fresh = false;
    let mut status_ms = 5_000u64;
    let mut chaos: Option<FaultPlan> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => common.grid = it.next().ok_or("--grid needs a name")?.clone(),
            "--listen" => listen = it.next().ok_or("--listen needs host:port")?.clone(),
            // --resume and --out are synonyms: both name the checkpoint.
            "--resume" | "--out" => {
                common.out = Some(PathBuf::from(it.next().ok_or("--resume needs a path")?));
            }
            "--chunk" => {
                chunk = Some(
                    it.next()
                        .ok_or("--chunk needs a count")?
                        .parse()
                        .map_err(|e| format!("--chunk: {e}"))?,
                );
            }
            "--ttl-ms" => {
                ttl_ms = it
                    .next()
                    .ok_or("--ttl-ms needs milliseconds")?
                    .parse()
                    .map_err(|e| format!("--ttl-ms: {e}"))?;
            }
            "--max-cells" => {
                max_cells = it
                    .next()
                    .ok_or("--max-cells needs a count")?
                    .parse()
                    .map_err(|e| format!("--max-cells: {e}"))?;
            }
            "--fresh" => fresh = true,
            // 0 disables the periodic status line entirely.
            "--status-ms" => {
                status_ms = it
                    .next()
                    .ok_or("--status-ms needs milliseconds")?
                    .parse()
                    .map_err(|e| format!("--status-ms: {e}"))?;
            }
            "--chaos-seed" => chaos = Some(parse_chaos_seed(it.next())?),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if common.grid.is_empty() {
        return Err(format!("--grid is required\n{}", usage()));
    }
    if listen.is_empty() {
        return Err(format!("--listen is required\n{}", usage()));
    }
    let (grid, out) = build_grid(&common)?;
    if fresh {
        match std::fs::remove_file(&out) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot remove {}: {e}", out.display())),
        }
    }

    let listener = std::net::TcpListener::bind(&listen)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(listen);
    let options = QueenOptions {
        chunk,
        ttl: std::time::Duration::from_millis(ttl_ms),
        max_cells,
        status_every: (status_ms > 0).then(|| std::time::Duration::from_millis(status_ms)),
        chaos,
        ..QueenOptions::new(&common.grid, matches!(Scale::from_env(), Scale::Fast))
    };
    println!(
        "sweep: queen serving `{}` ({} cells) on {addr}; connect workers with `sweep worker --connect {addr}`",
        common.grid,
        grid.num_cells()
    );
    let report = run_queen(&grid, listener, &out, &options)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "sweep: queen `{}`: {} reused, {} run by {} worker(s), {} duplicate(s) reconciled, {} speculative lease(s) → {}",
        common.grid,
        report.reused,
        report.ran,
        report.workers,
        report.duplicates,
        report.speculative,
        out.display()
    );
    if !report.complete {
        println!(
            "sweep: interrupted at --max-cells {max_cells}; finish with `sweep queen --grid {} --listen {} --resume {}` (or `sweep resume`)",
            common.grid,
            addr,
            out.display()
        );
    }
    Ok(())
}

fn cmd_worker(args: &[String]) -> Result<(), String> {
    let mut connect = String::new();
    let mut options = WorkerOptions::new(format!("worker-{}", std::process::id()));
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = it.next().ok_or("--connect needs host:port")?.clone(),
            "--name" => options.name = it.next().ok_or("--name needs a label")?.clone(),
            "--retry-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--retry-ms needs milliseconds")?
                    .parse()
                    .map_err(|e| format!("--retry-ms: {e}"))?;
                options.connect_retry = std::time::Duration::from_millis(ms);
            }
            // Fault injection for the CI smoke and tests: die mid-lease
            // after N records, without a DONE. Deliberately undocumented
            // in the usage text.
            "--fail-after" => {
                options.fail_after = Some(
                    it.next()
                        .ok_or("--fail-after needs a count")?
                        .parse()
                        .map_err(|e| format!("--fail-after: {e}"))?,
                );
            }
            "--chaos-seed" => options.chaos = Some(parse_chaos_seed(it.next())?),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if connect.is_empty() {
        return Err(format!("--connect is required\n{}", usage()));
    }

    // Rebuild whatever grid the queen names, at the queen's scale — the
    // worker's own COHMELEON_FAST is deliberately ignored so a fleet
    // can't be torn by mismatched environments.
    let resolve = |name: &str, fast: bool| {
        named_experiment(name, if fast { Scale::Fast } else { Scale::Full })?
            .build()
            .map_err(|e| e.to_string())
    };
    let report = run_worker(&connect, resolve, &options).map_err(|e| format!("{connect}: {e}"))?;
    println!(
        "sweep: worker `{}` on `{}`: {} cells over {} lease(s){}",
        options.name,
        report.grid,
        report.cells,
        report.leases,
        if report.aborted {
            " — aborted by --fail-after"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_freeze(args: &[String]) -> Result<(), String> {
    let mut grid_name = String::new();
    let mut out: Option<PathBuf> = None;
    let mut cell_index: Option<usize> = None;
    let mut scenario: Option<String> = None;
    let mut policy = "cohmeleon".to_owned();
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => grid_name = it.next().ok_or("--grid needs a name")?.clone(),
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--cell" => {
                cell_index = Some(
                    it.next()
                        .ok_or("--cell needs an index")?
                        .parse()
                        .map_err(|e| format!("--cell: {e}"))?,
                );
            }
            "--scenario" => scenario = Some(it.next().ok_or("--scenario needs a label")?.clone()),
            "--policy" => policy = it.next().ok_or("--policy needs a label")?.clone(),
            "--seed" => {
                seed = Some(
                    it.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if grid_name.is_empty() {
        return Err(format!("--grid is required\n{}", usage()));
    }
    let out = out.ok_or_else(|| format!("--out is required\n{}", usage()))?;
    let grid = named_experiment(&grid_name, Scale::from_env())?
        .build()
        .map_err(|e| e.to_string())?;

    let cell = match cell_index {
        Some(i) => {
            if i >= grid.num_cells() {
                return Err(format!(
                    "--cell {i} out of range: `{grid_name}` has {} cells",
                    grid.num_cells()
                ));
            }
            grid.cell_at(i)
        }
        None => {
            let scenario = scenario
                .as_deref()
                .unwrap_or_else(|| grid.scenarios()[0].label.as_str());
            let seed = seed.unwrap_or(grid.seeds()[0]);
            grid.cells()
                .find(|c| {
                    grid.scenarios()[c.scenario].label == scenario
                        && grid.policies()[c.policy].policy_label() == policy
                        && grid.seeds()[c.seed] == seed
                })
                .ok_or_else(|| {
                    format!(
                        "no cell matches scenario `{scenario}` policy `{policy}` seed {seed} in `{grid_name}`"
                    )
                })?
        }
    };

    let (result, tables) = grid.freeze_cell(cell);
    let tables = tables.ok_or_else(|| {
        format!(
            "policy `{}` exports no learned tables (only learning policies can be frozen)",
            result.policy
        )
    })?;
    let meta = SnapshotMeta {
        grid: grid_name.clone(),
        scenario: result.scenario.clone(),
        policy: result.policy.clone(),
        seed: result.seed,
        structural_hash: result.result.structural_hash(),
    };
    write_snapshot(&out, &meta, &tables).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "sweep: froze `{}` cell (scenario `{}`, policy `{}`, seed {}) → {}",
        grid_name,
        result.scenario,
        result.policy,
        result.seed,
        out.display()
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut table: Option<PathBuf> = None;
    let mut listen = String::new();
    let mut states = cohmeleon_core::State::COUNT;
    let mut chaos: Option<FaultPlan> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--table" => table = Some(PathBuf::from(it.next().ok_or("--table needs a path")?)),
            "--listen" => listen = it.next().ok_or("--listen needs host:port")?.clone(),
            "--states" => {
                states = it
                    .next()
                    .ok_or("--states needs a count")?
                    .parse()
                    .map_err(|e| format!("--states: {e}"))?;
            }
            "--chaos-seed" => chaos = Some(parse_chaos_seed(it.next())?),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let table = table.ok_or_else(|| format!("--table is required\n{}", usage()))?;
    if listen.is_empty() {
        return Err(format!("--listen is required\n{}", usage()));
    }
    let text = std::fs::read_to_string(&table)
        .map_err(|e| format!("cannot read {}: {e}", table.display()))?;
    if let Ok(Some(meta)) = SnapshotMeta::parse(&text) {
        println!("sweep: snapshot provenance: {meta}");
    }
    let snapshot = FrozenSnapshot::parse(&text, states)
        .map_err(|e| format!("{}: {e}", table.display()))?;
    let listener = std::net::TcpListener::bind(&listen)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(listen);
    println!(
        "sweep: serving {} ({:?} scope, {} states, {} tables) on {addr}; connect with `sweep clients --connect {addr}`",
        table.display(),
        snapshot.scope(),
        snapshot.states(),
        snapshot.num_tables()
    );
    let options = ServeOptions {
        chaos,
        ..ServeOptions::default()
    };
    let report = run_server(listener, snapshot, &options).map_err(|e| format!("serve: {e}"))?;
    println!(
        "sweep: served {} decisions in {} batches to {} client(s), {} swap(s), {} error(s), final version {}",
        report.decisions,
        report.batches,
        report.clients,
        report.swaps,
        report.errors,
        report.final_version
    );
    Ok(())
}

fn cmd_clients(args: &[String]) -> Result<(), String> {
    let mut connect = String::new();
    let mut options = LoadOptions::default();
    let mut verify_paths: Vec<PathBuf> = Vec::new();
    let mut swap_path: Option<String> = None;
    let mut swap_after = 0usize;
    let mut hist: Option<PathBuf> = None;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => connect = it.next().ok_or("--connect needs host:port")?.clone(),
            "-n" | "--clients" => {
                options.clients = it
                    .next()
                    .ok_or("--clients needs a count")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--batches" => {
                options.batches = it
                    .next()
                    .ok_or("--batches needs a count")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?;
            }
            "--batch" => {
                options.batch_size = it
                    .next()
                    .ok_or("--batch needs a size")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
            }
            "--seed" => {
                options.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--verify" => {
                let list = it.next().ok_or("--verify needs a comma-separated list")?;
                verify_paths.extend(list.split(',').map(PathBuf::from));
            }
            "--swap" => swap_path = Some(it.next().ok_or("--swap needs a path")?.clone()),
            "--swap-after" => {
                swap_after = it
                    .next()
                    .ok_or("--swap-after needs a batch count")?
                    .parse()
                    .map_err(|e| format!("--swap-after: {e}"))?;
            }
            "--hist" => hist = Some(PathBuf::from(it.next().ok_or("--hist needs a path")?)),
            "--shutdown" => shutdown = true,
            "--chaos-seed" => options.chaos = Some(parse_chaos_seed(it.next())?),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if connect.is_empty() {
        return Err(format!("--connect is required\n{}", usage()));
    }
    options.swap = swap_path.map(|path| SwapPlan {
        path,
        after_batches: swap_after,
    });

    // One probe handshake learns the server's state-space cardinality, so
    // --verify files parse against the same shape the server dispatches.
    let states = {
        let probe =
            ServeClient::connect(&connect, "probe").map_err(|e| format!("{connect}: {e}"))?;
        probe.states()
    };
    for path in &verify_paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        options.verify.push(
            FrozenSnapshot::parse(&text, states).map_err(|e| format!("{}: {e}", path.display()))?,
        );
    }

    let report = run_load(&connect, &options).map_err(|e| format!("{connect}: {e}"))?;
    let h = &report.histogram;
    println!(
        "sweep: {} clients × {} batches × {}: {} decisions in {:.2}s ({:.0}/s) | batch RTT p50 {}ns p99 {}ns p999 {}ns | versions {:?} | {} verified mismatches, {} unverified",
        options.clients,
        options.batches,
        options.batch_size,
        report.decisions,
        report.elapsed.as_secs_f64(),
        report.throughput(),
        h.p50(),
        h.p99(),
        h.p999(),
        report.versions_seen,
        report.mismatches,
        report.unverified
    );
    if options.chaos.is_some() {
        println!(
            "sweep: chaos: survived {} connection error(s), verified {} duplicated repl(ies)",
            report.conn_errors, report.dup_replies
        );
    }
    if let Some(hist) = &hist {
        use std::io::Write;
        let label = format!("serve_clients_n{}", options.clients);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(hist)
            .map_err(|e| format!("cannot open {}: {e}", hist.display()))?;
        writeln!(file, "{}", h.to_json(&label))
            .map_err(|e| format!("cannot write {}: {e}", hist.display()))?;
    }
    if shutdown {
        ServeClient::connect(&connect, "shutdown")
            .and_then(|c| c.shutdown())
            .map_err(|e| format!("shutdown: {e}"))?;
        println!("sweep: server shut down");
    }
    if report.mismatches > 0 {
        return Err(format!(
            "{} responses disagreed with local frozen dispatch",
            report.mismatches
        ));
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut grid_name: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--grid" => grid_name = Some(it.next().ok_or("--grid needs a name")?.clone()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`\n{}", usage()))
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    let out = out.ok_or_else(|| format!("--out is required\n{}", usage()))?;
    if files.is_empty() {
        return Err(format!("merge needs at least one input file\n{}", usage()));
    }
    let grid = match &grid_name {
        Some(name) => Some(
            named_experiment(name, Scale::from_env())?
                .build()
                .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let records = merge_files(files, grid.as_ref()).map_err(|e| e.to_string())?;
    std::fs::write(&out, canonical_jsonl(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("sweep: merged {} cells to {}", records.len(), out.display());
    Ok(())
}
