//! `sweep` — run, resume, shard and merge grid sweeps from the command
//! line.
//!
//! ```text
//! sweep run    --grid NAME [--out PATH] [--executor serial|work-stealing]
//!              [--max-cells N] [--fresh] [--shard I/N]
//! sweep resume --grid NAME [--out PATH] [--executor ...]
//! sweep shard  --grid NAME --shards N [--out PATH] [--dir DIR]
//! sweep merge  --out PATH [--grid NAME] FILE...
//! ```
//!
//! * `run` is resumable by default: cells already in the checkpoint at
//!   `--out` (default `<grid>.jsonl`) are skipped, fresh cells are
//!   appended with an fsync each, and a completed run finalises the file
//!   in canonical order — byte-identical to an uninterrupted serial run.
//!   `--max-cells N` stops after N fresh cells (the deterministic
//!   stand-in for a kill; CI uses it for the resume smoke), `--fresh`
//!   deletes the checkpoint first.
//! * `resume` is `run` spelled for humans reading a script.
//! * `shard` re-executes this binary once per shard (`run --grid NAME
//!   --shard i/n --out DIR/shard-i.jsonl`), waits, merges the shard
//!   files (verifying every cell exactly once, each owned by its
//!   writer), and writes the canonical stream to `--out`. Workers
//!   inherit the environment, so `COHMELEON_FAST=1` propagates.
//! * `merge` folds already-written shard/partial files into one
//!   canonical stream; with `--grid` it also verifies completeness
//!   against that grid.
//!
//! Grid names are deterministic functions of `(name, COHMELEON_FAST)` —
//! see `cohmeleon_bench::sweeps` for why that is load-bearing.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cohmeleon_bench::sweeps::{named_experiment, GRID_NAMES};
use cohmeleon_bench::Scale;
use cohmeleon_exp::{
    canonical_jsonl, merge_files, ResumeOutcome, Serial, ShardExecutor, ShardSpec, SweepGrid,
    WorkStealing,
};

fn usage() -> String {
    let mut out = String::from(
        "usage:\n  sweep run    --grid NAME [--out PATH] [--executor serial|work-stealing]\n               [--max-cells N] [--fresh] [--shard I/N]\n  sweep resume --grid NAME [--out PATH] [--executor ...]\n  sweep shard  --grid NAME --shards N [--out PATH] [--dir DIR]\n  sweep merge  --out PATH [--grid NAME] FILE...\n\ngrids (COHMELEON_FAST=1 for reduced scale):\n",
    );
    for (name, what) in GRID_NAMES {
        out.push_str(&format!("  {name:<10} {what}\n"));
    }
    out
}

/// The two in-process executors, chosen by `--executor`.
enum Exec {
    Serial,
    WorkStealing,
}

impl Exec {
    fn parse(s: &str) -> Result<Exec, String> {
        match s {
            "serial" => Ok(Exec::Serial),
            "work-stealing" | "worksteal" | "steal" => Ok(Exec::WorkStealing),
            other => Err(format!("unknown executor `{other}`")),
        }
    }

    fn run_resumable(
        &self,
        grid: &SweepGrid,
        path: &Path,
        max_cells: usize,
    ) -> std::io::Result<ResumeOutcome> {
        match self {
            Exec::Serial => grid.run_resumable_capped(path, &Serial, max_cells),
            Exec::WorkStealing => grid.run_resumable_capped(path, &WorkStealing::new(), max_cells),
        }
    }
}

struct CommonArgs {
    grid: String,
    out: Option<PathBuf>,
    executor: Exec,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "run" | "resume" => cmd_run(rest),
        "shard" => cmd_shard(rest),
        "merge" => cmd_merge(rest),
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the named grid with the checkpoint path resolved: `--out`
/// overrides the grid's conventional `<name>.jsonl`.
fn build_grid(common: &CommonArgs) -> Result<(SweepGrid, PathBuf), String> {
    let mut experiment = named_experiment(&common.grid, Scale::from_env())?;
    if let Some(out) = &common.out {
        experiment = experiment.resume_from(out);
    }
    let grid = experiment.build().map_err(|e| e.to_string())?;
    let out = grid
        .resume_path()
        .expect("named experiments always carry a checkpoint path")
        .to_owned();
    Ok((grid, out))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut common = CommonArgs {
        grid: String::new(),
        out: None,
        executor: Exec::WorkStealing,
    };
    let mut max_cells = usize::MAX;
    let mut fresh = false;
    let mut shard: Option<ShardSpec> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => common.grid = it.next().ok_or("--grid needs a name")?.clone(),
            "--out" => common.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--executor" => {
                common.executor = Exec::parse(it.next().ok_or("--executor needs a name")?)?;
            }
            "--max-cells" => {
                max_cells = it
                    .next()
                    .ok_or("--max-cells needs a count")?
                    .parse()
                    .map_err(|e| format!("--max-cells: {e}"))?;
            }
            "--fresh" => fresh = true,
            "--shard" => {
                shard = Some(
                    it.next()
                        .ok_or("--shard needs I/N")?
                        .parse()
                        .map_err(|e: cohmeleon_exp::shard::ParseShardSpecError| e.to_string())?,
                );
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if common.grid.is_empty() {
        return Err(format!("--grid is required\n{}", usage()));
    }
    if shard.is_some() && common.out.is_none() {
        // Without this, a worker would clobber the grid's default
        // checkpoint file with one shard's slice.
        return Err("--shard requires an explicit --out".into());
    }
    let (grid, out) = build_grid(&common)?;

    if let Some(shard) = shard {
        // Worker mode: run exactly the owned cells serially and write
        // this shard's canonical slice (workers are processes — the
        // parallelism is between them, not inside them).
        let records = grid.collect_shard_records(shard, &Serial);
        std::fs::write(&out, canonical_jsonl(&records))
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!(
            "sweep: shard {shard} of `{}`: wrote {} of {} cells to {}",
            common.grid,
            records.len(),
            grid.num_cells(),
            out.display()
        );
        return Ok(());
    }

    if fresh {
        match std::fs::remove_file(&out) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot remove {}: {e}", out.display())),
        }
    }

    let outcome = common
        .executor
        .run_resumable(&grid, &out, max_cells)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    if outcome.dropped_tail {
        println!("sweep: dropped a torn tail line (cell re-run)");
    }
    println!(
        "sweep: `{}`: {} cells reused, {} run → {}",
        common.grid,
        outcome.reused,
        outcome.ran,
        out.display()
    );
    if !outcome.complete {
        println!(
            "sweep: interrupted at --max-cells {max_cells}; finish with `sweep resume --grid {} --out {}`",
            common.grid,
            out.display()
        );
    }
    Ok(())
}

fn cmd_shard(args: &[String]) -> Result<(), String> {
    let mut common = CommonArgs {
        grid: String::new(),
        out: None,
        executor: Exec::Serial,
    };
    let mut shards = 0usize;
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => common.grid = it.next().ok_or("--grid needs a name")?.clone(),
            "--out" => common.out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--shards" => {
                shards = it
                    .next()
                    .ok_or("--shards needs a count")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--dir" => dir = Some(PathBuf::from(it.next().ok_or("--dir needs a path")?)),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if common.grid.is_empty() {
        return Err(format!("--grid is required\n{}", usage()));
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let (grid, out) = build_grid(&common)?;
    let dir = dir.unwrap_or_else(|| {
        let mut d = out.as_os_str().to_owned();
        d.push(".shards");
        PathBuf::from(d)
    });

    let grid_name = common.grid.clone();
    let records = ShardExecutor::new(shards)
        .run(&grid, &dir, |shard, shard_out| {
            vec![
                "run".to_owned(),
                "--grid".to_owned(),
                grid_name.clone(),
                "--shard".to_owned(),
                shard.to_string(),
                "--out".to_owned(),
                shard_out.display().to_string(),
            ]
        })
        .map_err(|e| e.to_string())?;
    std::fs::write(&out, canonical_jsonl(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "sweep: `{}` over {shards} worker processes: merged {} cells to {} (shard files in {})",
        common.grid,
        records.len(),
        out.display(),
        dir.display()
    );
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let mut out: Option<PathBuf> = None;
    let mut grid_name: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?)),
            "--grid" => grid_name = Some(it.next().ok_or("--grid needs a name")?.clone()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`\n{}", usage()))
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    let out = out.ok_or_else(|| format!("--out is required\n{}", usage()))?;
    if files.is_empty() {
        return Err(format!("merge needs at least one input file\n{}", usage()));
    }
    let grid = match &grid_name {
        Some(name) => Some(
            named_experiment(name, Scale::from_env())?
                .build()
                .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let records = merge_files(files, grid.as_ref()).map_err(|e| e.to_string())?;
    std::fs::write(&out, canonical_jsonl(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("sweep: merged {} cells to {}", records.len(), out.display());
    Ok(())
}
