//! Regenerates table1 of the paper.

fn main() {
    cohmeleon_bench::figures::table1::print();
}
