//! `simulate` — run an application (from a config file or the generator) on
//! one of the paper's SoCs under a chosen coherence policy.
//!
//! ```text
//! simulate [--soc NAME] [--policy NAME] [--app FILE] [--seed N]
//!          [--train N] [--save-qtable FILE] [--load-qtable FILE]
//!
//!   --soc      soc0..soc6, soc0-streaming, soc0-irregular,
//!              motivation-isolation, motivation-parallel   (default soc0)
//!   --policy   fixed-non-coh-dma | fixed-llc-coh-dma | fixed-coh-dma |
//!              fixed-full-coh | rand | fixed-hetero | manual | cohmeleon
//!              (default cohmeleon)
//!   --app      application config file (see cohmeleon-workloads docs);
//!              omitted = a randomly generated evaluation application
//!   --seed     RNG seed (default 7)
//!   --train    Cohmeleon training iterations (default 10)
//!   --save-qtable / --load-qtable
//!              persist or restore a trained Q-table (TSV)
//! ```

use std::process::ExitCode;

use cohmeleon_bench::policies::{build_policy, PolicyKind};
use cohmeleon_bench::table;
use cohmeleon_core::policy::CohmeleonPolicy;
use cohmeleon_core::Policy as _;
use cohmeleon_core::qlearn::{LearningSchedule, QTable};
use cohmeleon_core::reward::RewardWeights;
use cohmeleon_soc::config::{
    motivation_isolation_soc, motivation_parallel_soc, soc0, soc0_irregular, soc0_streaming,
    soc1, soc2, soc3, soc4, soc5, soc6,
};
use cohmeleon_soc::SocConfig;
use cohmeleon_workloads::appconfig::parse_app;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::runner::run_protocol;

struct Args {
    soc: String,
    policy: String,
    app: Option<String>,
    seed: u64,
    train: usize,
    save_qtable: Option<String>,
    load_qtable: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        soc: "soc0".into(),
        policy: "cohmeleon".into(),
        app: None,
        seed: 7,
        train: 10,
        save_qtable: None,
        load_qtable: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--soc" => args.soc = value("--soc")?,
            "--policy" => args.policy = value("--policy")?,
            "--app" => args.app = Some(value("--app")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "--train" => {
                args.train = value("--train")?
                    .parse()
                    .map_err(|_| "--train must be an integer".to_string())?;
            }
            "--save-qtable" => args.save_qtable = Some(value("--save-qtable")?),
            "--load-qtable" => args.load_qtable = Some(value("--load-qtable")?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn soc_by_name(name: &str) -> Option<SocConfig> {
    Some(match name {
        "soc0" => soc0(),
        "soc0-streaming" => soc0_streaming(),
        "soc0-irregular" => soc0_irregular(),
        "soc1" => soc1(),
        "soc2" => soc2(),
        "soc3" => soc3(),
        "soc4" => soc4(),
        "soc5" => soc5(),
        "soc6" => soc6(),
        "motivation-isolation" => motivation_isolation_soc(),
        "motivation-parallel" => motivation_parallel_soc(),
        _ => return None,
    })
}

fn policy_kind(name: &str) -> Option<PolicyKind> {
    Some(match name {
        "fixed-non-coh-dma" => PolicyKind::FixedNonCoh,
        "fixed-llc-coh-dma" => PolicyKind::FixedLlcCoh,
        "fixed-coh-dma" => PolicyKind::FixedCohDma,
        "fixed-full-coh" => PolicyKind::FixedFullCoh,
        "rand" => PolicyKind::Random,
        "fixed-hetero" => PolicyKind::FixedHetero,
        "manual" => PolicyKind::Manual,
        "cohmeleon" => PolicyKind::Cohmeleon,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", include_str!("simulate.rs").lines().skip(3).take(16).map(|l| l.trim_start_matches("//! ")).collect::<Vec<_>>().join("\n"));
            return ExitCode::from(2);
        }
    };

    let Some(config) = soc_by_name(&args.soc) else {
        eprintln!("error: unknown SoC `{}`", args.soc);
        return ExitCode::from(2);
    };
    let Some(kind) = policy_kind(&args.policy) else {
        eprintln!("error: unknown policy `{}`", args.policy);
        return ExitCode::from(2);
    };

    let test_app = match &args.app {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match parse_app(&text) {
                Ok(app) => app,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => generate_app(&config, &GeneratorParams::default(), args.seed ^ 0xa99),
    };
    let train_app = generate_app(&config, &GeneratorParams::default(), args.seed);

    // Build the policy; a pre-trained Q-table short-circuits training.
    let mut policy: Box<dyn cohmeleon_core::Policy> =
        if let (PolicyKind::Cohmeleon, Some(path)) = (kind, &args.load_qtable) {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let table = match QTable::from_tsv(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let mut p = CohmeleonPolicy::new(
                RewardWeights::paper_default(),
                LearningSchedule::paper_default(args.train.max(1)),
                args.seed,
            );
            p.set_table(table);
            p.freeze();
            println!("loaded trained Q-table from {path}");
            Box::new(p)
        } else {
            build_policy(kind, &config, args.train.max(1), args.seed)
        };

    println!(
        "running `{}` on {} under {} (seed {})",
        test_app.name, config.name, args.policy, args.seed
    );
    let result = run_protocol(
        &config,
        &train_app,
        &test_app,
        policy.as_mut(),
        args.train,
        args.seed,
    );

    let rows: Vec<Vec<String>> = result
        .phases
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.duration.to_string(),
                p.offchip.to_string(),
                p.invocations.len().to_string(),
            ]
        })
        .collect();
    println!(
        "\n{}",
        table::render(&["phase", "cycles", "off-chip", "invocations"], &rows)
    );
    println!(
        "total: {} cycles, {} off-chip accesses",
        result.total_duration(),
        result.total_offchip()
    );

    if let Some(path) = &args.save_qtable {
        // Only meaningful for cohmeleon, but harmless otherwise.
        if kind == PolicyKind::Cohmeleon {
            // Re-train a fresh policy? No: we cannot recover the table from
            // a Box<dyn Policy>; instead train a dedicated instance.
            let mut p = CohmeleonPolicy::new(
                RewardWeights::paper_default(),
                LearningSchedule::paper_default(args.train.max(1)),
                args.seed,
            );
            run_protocol(&config, &train_app, &test_app, &mut p, args.train, args.seed);
            if let Err(e) = std::fs::write(path, p.table().to_tsv()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("saved trained Q-table to {path}");
        } else {
            eprintln!("note: --save-qtable only applies to --policy cohmeleon");
        }
    }
    ExitCode::SUCCESS
}
