//! Regenerates Figure 2 (accelerators in isolation).

fn main() {
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::fig2::run(scale);
    cohmeleon_bench::figures::fig2::print(&data);
}
