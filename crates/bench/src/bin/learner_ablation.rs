//! Sweeps the learner design space (state spaces × exploration strategies
//! × update rules) through the experiment grid and writes the per-cell
//! JSONL record.
//!
//! Usage: `learner_ablation [--out PATH]` (default `learner_ablation.jsonl`;
//! `COHMELEON_FAST=1` for the reduced grid).

fn main() {
    let mut out = String::from("learner_ablation.jsonl");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::learner_ablation::run(scale);
    cohmeleon_bench::figures::learner_ablation::print(&data);
    cohmeleon_bench::figures::learner_ablation::write_jsonl(&data, &out)
        .expect("write learner-ablation JSONL");
    println!("\nwrote {} cell records to {out}", data.records.len());
}
