//! Sweeps the learner design space (state spaces × exploration strategies
//! × update rules) through the experiment grid and writes the per-cell
//! JSONL record.
//!
//! ```text
//! learner_ablation [--out PATH] [--resume] [--shards N] [--shard I/N]
//! ```
//!
//! Default output is `learner_ablation.jsonl` (`COHMELEON_FAST=1` for the
//! reduced grid). `--resume` skips cells already recorded at the output
//! path and appends only the missing ones (a killed sweep finishes
//! instead of restarting); `--shards N` splits the grid over N worker
//! processes of this binary and merges their outputs; `--shard I/N` is
//! the internal worker mode those processes run. All paths end in the
//! same canonical record stream, byte-identical to a serial run.

use cohmeleon_bench::figures::learner_ablation;
use cohmeleon_bench::Scale;
use cohmeleon_exp::{canonical_jsonl, Serial, ShardExecutor, ShardSpec, WorkStealing};

fn main() {
    let mut out_flag: Option<String> = None;
    let mut resume = false;
    let mut shards: Option<usize> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_flag = Some(args.next().expect("--out needs a path")),
            "--resume" => resume = true,
            "--shards" => {
                shards = Some(
                    args.next()
                        .expect("--shards needs a count")
                        .parse()
                        .expect("--shards needs a number"),
                );
            }
            "--shard" => {
                shard = Some(
                    args.next()
                        .expect("--shard needs I/N")
                        .parse()
                        .expect("--shard needs I/N"),
                );
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    assert!(
        !(resume && shards.is_some()),
        "--resume and --shards are exclusive (a sharded run re-merges from scratch)"
    );
    assert!(
        shard.is_none() || out_flag.is_some(),
        "--shard requires an explicit --out (a worker must not clobber the default checkpoint)"
    );

    let scale = Scale::from_env();
    let mut experiment = learner_ablation::experiment(scale);
    if let Some(out) = &out_flag {
        experiment = experiment.resume_from(out);
    }
    if let Some(n) = shards {
        experiment = experiment.shards(n);
    }
    let grid = experiment.build().expect("learner ablation axes are non-empty");
    let out = grid
        .resume_path()
        .expect("the ablation experiment carries its checkpoint path")
        .to_owned();

    if let Some(shard) = shard {
        // Worker mode: run this shard's cells and write its slice.
        let records = grid.collect_shard_records(shard, &Serial);
        std::fs::write(&out, canonical_jsonl(&records)).expect("write shard records");
        println!("learner_ablation: shard {shard}: wrote {} cells", records.len());
        return;
    }

    let records = if let Some(n) = grid.shard_count() {
        let mut dir = out.as_os_str().to_owned();
        dir.push(".shards");
        let records = ShardExecutor::new(n)
            .run(&grid, dir.as_ref(), |shard, shard_out| {
                vec![
                    "--shard".to_owned(),
                    shard.to_string(),
                    "--out".to_owned(),
                    shard_out.display().to_string(),
                ]
            })
            .expect("sharded learner ablation");
        std::fs::write(&out, canonical_jsonl(&records)).expect("write merged records");
        records
    } else if resume {
        let outcome = grid
            .run_resumable(&out, &WorkStealing::new())
            .expect("resume learner ablation");
        println!(
            "learner_ablation: resumed {} cells from disk, ran {}",
            outcome.reused, outcome.ran
        );
        outcome.records
    } else {
        let records = grid.collect_records(&WorkStealing::new());
        std::fs::write(&out, canonical_jsonl(&records)).expect("write learner-ablation JSONL");
        records
    };

    let count = records.len();
    let data = learner_ablation::data_from_records(records);
    learner_ablation::print(&data);
    println!("\nwrote {count} cell records to {}", out.display());
}
