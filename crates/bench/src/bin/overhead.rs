//! Regenerates overhead of the paper's evaluation.

fn main() {
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::overhead::run(scale);
    cohmeleon_bench::figures::overhead::print(&data);
}
