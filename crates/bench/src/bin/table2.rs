//! Regenerates table2 of the paper.

fn main() {
    cohmeleon_bench::figures::table2::print();
}
