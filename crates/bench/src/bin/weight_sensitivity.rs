//! Sweeps reward-weight presets × agent scopes through the experiment
//! grid (Figure-6-style weight sensitivity on the learner axis) and
//! writes the per-cell JSONL record.
//!
//! ```text
//! weight_sensitivity [--out PATH] [--resume] [--shards N] [--shard I/N]
//! ```
//!
//! Default output is `weight_sensitivity.jsonl` (`COHMELEON_FAST=1` for
//! the reduced grid). `--resume` skips cells already recorded at the
//! output path; `--shards N` splits the grid over N worker processes of
//! this binary and merges their outputs; `--shard I/N` is the internal
//! worker mode. All paths end in the same canonical record stream,
//! byte-identical to a serial run.

use cohmeleon_bench::figures::weight_sensitivity;
use cohmeleon_bench::Scale;
use cohmeleon_exp::{canonical_jsonl, Serial, ShardExecutor, ShardSpec, WorkStealing};

fn main() {
    let mut out_flag: Option<String> = None;
    let mut resume = false;
    let mut shards: Option<usize> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_flag = Some(args.next().expect("--out needs a path")),
            "--resume" => resume = true,
            "--shards" => {
                shards = Some(
                    args.next()
                        .expect("--shards needs a count")
                        .parse()
                        .expect("--shards needs a number"),
                );
            }
            "--shard" => {
                shard = Some(
                    args.next()
                        .expect("--shard needs I/N")
                        .parse()
                        .expect("--shard needs I/N"),
                );
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    assert!(
        !(resume && shards.is_some()),
        "--resume and --shards are exclusive (a sharded run re-merges from scratch)"
    );
    assert!(
        shard.is_none() || out_flag.is_some(),
        "--shard requires an explicit --out (a worker must not clobber the default checkpoint)"
    );

    let scale = Scale::from_env();
    let mut experiment = weight_sensitivity::experiment(scale);
    if let Some(out) = &out_flag {
        experiment = experiment.resume_from(out);
    }
    if let Some(n) = shards {
        experiment = experiment.shards(n);
    }
    let grid = experiment
        .build()
        .expect("weight-sensitivity axes are non-empty");
    let out = grid
        .resume_path()
        .expect("the weight-sensitivity experiment carries its checkpoint path")
        .to_owned();

    if let Some(shard) = shard {
        // Worker mode: run this shard's cells and write its slice.
        let records = grid.collect_shard_records(shard, &Serial);
        std::fs::write(&out, canonical_jsonl(&records)).expect("write shard records");
        println!("weight_sensitivity: shard {shard}: wrote {} cells", records.len());
        return;
    }

    let records = if let Some(n) = grid.shard_count() {
        let mut dir = out.as_os_str().to_owned();
        dir.push(".shards");
        let records = ShardExecutor::new(n)
            .run(&grid, dir.as_ref(), |shard, shard_out| {
                vec![
                    "--shard".to_owned(),
                    shard.to_string(),
                    "--out".to_owned(),
                    shard_out.display().to_string(),
                ]
            })
            .expect("sharded weight sensitivity");
        std::fs::write(&out, canonical_jsonl(&records)).expect("write merged records");
        records
    } else if resume {
        let outcome = grid
            .run_resumable(&out, &WorkStealing::new())
            .expect("resume weight sensitivity");
        println!(
            "weight_sensitivity: resumed {} cells from disk, ran {}",
            outcome.reused, outcome.ran
        );
        outcome.records
    } else {
        let records = grid.collect_records(&WorkStealing::new());
        std::fs::write(&out, canonical_jsonl(&records)).expect("write weight-sensitivity JSONL");
        records
    };

    let count = records.len();
    let data = weight_sensitivity::data_from_records(records);
    weight_sensitivity::print(&data);
    println!("\nwrote {count} cell records to {}", out.display());
}
