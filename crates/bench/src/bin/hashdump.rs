//! `hashdump` — prints the structural hash of a deterministic run matrix.
//!
//! Used to verify that hot-path refactors keep the simulation bit-identical:
//! run it on two checkouts and diff the output. Covers every coherence mode
//! path, the manual heuristic, and the learned policy across three SoCs.

use cohmeleon_bench::policies::{build_policy, PolicyKind};
use cohmeleon_soc::config::{motivation_isolation_soc, soc1, soc2};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::runner::run_protocol;

fn main() {
    let socs = [
        ("soc1", soc1()),
        ("soc2", soc2()),
        ("motivation-isolation", motivation_isolation_soc()),
    ];
    let kinds = [
        PolicyKind::FixedNonCoh,
        PolicyKind::FixedLlcCoh,
        PolicyKind::FixedCohDma,
        PolicyKind::FixedFullCoh,
        PolicyKind::Manual,
        PolicyKind::Cohmeleon,
    ];
    for (name, config) in socs {
        for kind in kinds {
            for seed in [5u64, 7] {
                let train = generate_app(&config, &GeneratorParams::quick(), seed);
                let test = generate_app(&config, &GeneratorParams::quick(), seed + 1);
                let mut policy = build_policy(kind, &config, 2, seed);
                let result = run_protocol(&config, &train, &test, policy.as_mut(), 2, seed);
                println!("{name} {kind:?} seed={seed} hash={:#018x}", result.structural_hash());
            }
        }
    }
}
