//! `chaos_soak` — M seeded fault schedules against the fleet and the
//! serve runtime, each asserting the paper-grade invariants hold under
//! network adversity.
//!
//! ```text
//! chaos_soak [--seeds N] [--base-seed S] [--log-dir DIR]
//! ```
//!
//! Per seed, two legs run over loopback:
//!
//! * **fleet** — a chaos-wrapped queen is capped ("killed") halfway,
//!   resumed, and driven to completion by chaos-wrapped workers that are
//!   respawned as injected resets kill them. The finalized checkpoint
//!   must be **byte-identical** to a clean `Serial` run — which also
//!   proves the record ledger never double-committed a cell (a double
//!   commit would be a duplicated line).
//! * **serve** — a chaos-wrapped server and chaos-wrapped verifying
//!   load-generator clients, with a snapshot hot-swap mid-run. Every
//!   response (including replies to chaos-duplicated `DECIDE` lines)
//!   must verify against the snapshot of the version it claims: faults
//!   may cost connections, **never correctness** (`mismatches == 0`,
//!   `unverified == 0`, every batch eventually answered).
//!
//! A failing seed writes its full fault log — every injected fault with
//! its `(seed, conn, op)` replay coordinate — to `--log-dir`, and the
//! process exits non-zero. `COHMELEON_FAST=1` does not change anything
//! here (the grids are already minimal); the flag is accepted in the
//! environment for CI symmetry. Chaos runs are excluded from the
//! tracked performance baselines — see docs/PERFORMANCE.md.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use cohmeleon_chaos::FaultPlan;
use cohmeleon_core::FrozenSnapshot;
use cohmeleon_exp::{canonical_jsonl, Experiment, PolicyKind, Serial, SweepGrid};
use cohmeleon_fleet::{run_queen, run_worker, QueenOptions, WorkerOptions};
use cohmeleon_serve::{run_load, run_server, LoadOptions, ServeClient, ServeOptions, SwapPlan};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

const STATES: usize = 27;

/// The small grid both fleet legs sweep: cheap cells, but enough of them
/// that leases, re-leases and the capped-queen resume all happen.
fn soak_grid() -> SweepGrid {
    let config = soc1();
    let params = GeneratorParams {
        phases: 1,
        ..GeneratorParams::quick()
    };
    let app = generate_app(&config, &params, 1);
    Experiment::evaluate(config, app)
        .policy_kinds([PolicyKind::FixedNonCoh, PolicyKind::Manual])
        .seeds([1, 2, 3])
        .build()
        .expect("soak grid builds")
}

/// Runs one queen to completion or its cap, respawning chaos-wrapped
/// workers as faults kill them. Returns an error instead of hanging if
/// the fleet stops making progress.
fn drive_fleet(
    grid: &SweepGrid,
    path: &Path,
    plan: &FaultPlan,
    max_cells: usize,
) -> Result<cohmeleon_fleet::QueenReport, String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("addr: {e}"))?
        .to_string();
    let options = QueenOptions {
        ttl: Duration::from_millis(250),
        chunk: Some(2),
        max_cells,
        chaos: Some(plan.clone()),
        ..QueenOptions::new("soak-grid", false)
    };
    let resolver = |name: &str, _fast: bool| {
        if name == "soak-grid" {
            Ok(grid.clone())
        } else {
            Err(format!("unknown grid `{name}`"))
        }
    };
    std::thread::scope(|scope| {
        let queen = scope.spawn(|| run_queen(grid, listener, path, &options));
        let mut spawns = 0;
        while !queen.is_finished() {
            spawns += 1;
            if spawns > 200 {
                return Err("fleet made no progress in 200 worker spawns".to_string());
            }
            let worker_options = WorkerOptions {
                backoff: Duration::from_millis(20),
                connect_retry: Duration::from_millis(500),
                chaos: Some(plan.clone()),
                ..WorkerOptions::new(format!("soak-w{spawns}"))
            };
            let addr = addr.clone();
            let handle = scope.spawn(move || run_worker(&addr, resolver, &worker_options));
            // Workers dying to injected resets is expected; respawn.
            let _ = handle.join().expect("worker thread");
        }
        queen
            .join()
            .expect("queen thread")
            .map_err(|e| format!("queen: {e}"))
    })
}

/// One fleet schedule: kill the queen halfway, resume, finish, compare
/// bytes against a clean serial run.
fn fleet_leg(seed: u64, grid: &SweepGrid, clean: &str) -> Result<FaultPlan, (FaultPlan, String)> {
    let plan = FaultPlan::new(seed);
    let path = std::env::temp_dir().join(format!(
        "cohmeleon-chaos-soak-fleet-{}-{seed}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let half = (grid.num_cells() / 2).max(1);
    let result = (|| {
        let first = drive_fleet(grid, &path, &plan, half)?;
        if first.complete {
            return Err(format!("queen ignored its --max-cells {half} cap"));
        }
        let second = drive_fleet(grid, &path, &plan, usize::MAX)?;
        if !second.complete {
            return Err("resumed queen did not complete".to_string());
        }
        let bytes = std::fs::read_to_string(&path).map_err(|e| format!("read checkpoint: {e}"))?;
        if bytes != clean {
            return Err(format!(
                "checkpoint differs from clean serial run ({} vs {} bytes)",
                bytes.len(),
                clean.len()
            ));
        }
        Ok(())
    })();
    let _ = std::fs::remove_file(&path);
    match result {
        Ok(()) => Ok(plan),
        Err(why) => Err((plan, why)),
    }
}

/// A deterministic synthetic q-table whose argmax landscape depends on
/// `salt` (same construction as the serve integration tests).
fn synthetic_snapshot_text(salt: usize) -> String {
    let mut text = String::from("# chaos-soak synthetic table\n# cohmeleon q-table v1\n");
    for s in 0..STATES {
        let v = |a: usize| ((s * 31 + a * 7 + salt) % 13) as f64 - 6.0;
        text.push_str(&format!("{s}\t{}\t{}\t{}\t{}\n", v(0), v(1), v(2), v(3)));
    }
    text
}

/// One serve schedule: chaos server + chaos verifying clients + mid-run
/// hot swap. Faults may cost connections, never a wrong answer.
fn serve_leg(seed: u64) -> Result<FaultPlan, (FaultPlan, String)> {
    let plan = FaultPlan::new(seed);
    let text_a = synthetic_snapshot_text(0);
    let text_b = synthetic_snapshot_text(5);
    let snap_a = FrozenSnapshot::parse(&text_a, STATES).expect("snapshot A parses");
    let snap_b = FrozenSnapshot::parse(&text_b, STATES).expect("snapshot B parses");
    let path_b = std::env::temp_dir().join(format!(
        "cohmeleon-chaos-soak-serve-{}-{seed}.tsv",
        std::process::id()
    ));
    std::fs::write(&path_b, &text_b).expect("write snapshot B");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server_options = ServeOptions {
        chaos: Some(plan.clone()),
        ..ServeOptions::default()
    };
    // A lost SWAP reply makes the client retry a swap the server already
    // applied, so versions can run past 2: pad the verify list with
    // clones of B (every retry re-installs the same table) up to the
    // per-client consecutive-failure cap.
    let mut verify = vec![snap_a.clone()];
    verify.extend(std::iter::repeat_n(snap_b, 66));
    let load_options = LoadOptions {
        clients: 3,
        batches: 40,
        batch_size: 8,
        seed,
        swap: Some(SwapPlan {
            path: path_b.to_string_lossy().into_owned(),
            after_batches: 10,
        }),
        verify,
        chaos: Some(plan.clone()),
        ..LoadOptions::default()
    };

    let result = std::thread::scope(|scope| {
        let server = scope.spawn(|| run_server(listener, snap_a, &server_options));
        let load = run_load(&addr, &load_options).map_err(|e| format!("load: {e}"))?;

        // Shut the server down. Its side of this connection is chaos-
        // wrapped too, so retry until the shutdown lands (once SHUTDOWN
        // is parsed the flag is set even if the BYE reply is lost).
        let mut attempts = 0;
        while !server.is_finished() {
            attempts += 1;
            if attempts > 100 {
                return Err("server ignored 100 shutdown attempts".to_string());
            }
            let _ = ServeClient::connect(&addr, "soak-shutdown").and_then(|c| c.shutdown());
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = server
            .join()
            .expect("server thread")
            .map_err(|e| format!("server: {e}"))?;

        if load.mismatches != 0 {
            return Err(format!(
                "{} responses disagreed with the claimed version's table",
                load.mismatches
            ));
        }
        if load.unverified != 0 {
            return Err(format!(
                "{} responses claimed an unknown version",
                load.unverified
            ));
        }
        let expected = (load_options.clients * load_options.batches) as u64;
        if load.batches != expected {
            return Err(format!(
                "only {} of {expected} batches were answered",
                load.batches
            ));
        }
        if report.swaps == 0 {
            return Err("the hot swap never landed".to_string());
        }
        Ok(())
    });
    let _ = std::fs::remove_file(&path_b);
    match result {
        Ok(()) => Ok(plan),
        Err(why) => Err((plan, why)),
    }
}

fn main() -> ExitCode {
    let mut seeds = 8u64;
    let mut base_seed = 1u64;
    let mut log_dir = PathBuf::from("chaos-logs");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let parse = |name: &str, value: Option<&String>| -> Result<u64, String> {
            value
                .ok_or(format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--seeds" => match parse("--seeds", it.next()) {
                Ok(n) => seeds = n,
                Err(e) => {
                    eprintln!("chaos_soak: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--base-seed" => match parse("--base-seed", it.next()) {
                Ok(n) => base_seed = n,
                Err(e) => {
                    eprintln!("chaos_soak: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--log-dir" => match it.next() {
                Some(dir) => log_dir = PathBuf::from(dir),
                None => {
                    eprintln!("chaos_soak: --log-dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "chaos_soak: unknown argument `{other}`\nusage: chaos_soak [--seeds N] [--base-seed S] [--log-dir DIR]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let grid = soak_grid();
    let clean = canonical_jsonl(&grid.collect_records(&Serial));
    println!(
        "chaos_soak: {seeds} seed(s) from {base_seed}; fleet grid has {} cells",
        grid.num_cells()
    );

    let mut failures = 0u64;
    for i in 0..seeds {
        let seed = base_seed + i;
        match fleet_leg(seed, &grid, &clean) {
            Ok(plan) => println!(
                "chaos_soak: seed {seed} fleet  ok ({} faults injected)",
                plan.fault_count()
            ),
            Err((plan, why)) => {
                failures += 1;
                eprintln!("chaos_soak: seed {seed} fleet  FAILED: {why}");
                write_fault_log(&log_dir, "fleet", seed, &plan);
            }
        }
        match serve_leg(seed) {
            Ok(plan) => println!(
                "chaos_soak: seed {seed} serve  ok ({} faults injected)",
                plan.fault_count()
            ),
            Err((plan, why)) => {
                failures += 1;
                eprintln!("chaos_soak: seed {seed} serve  FAILED: {why}");
                write_fault_log(&log_dir, "serve", seed, &plan);
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "chaos_soak: {failures} schedule(s) failed; fault logs in {}",
            log_dir.display()
        );
        return ExitCode::FAILURE;
    }
    println!("chaos_soak: all {seeds} seed(s) clean on both legs");
    ExitCode::SUCCESS
}

/// Writes a failing schedule's full fault log for replay (`--chaos-seed
/// <seed>` reproduces it exactly).
fn write_fault_log(dir: &Path, leg: &str, seed: u64, plan: &FaultPlan) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("chaos_soak: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("chaos-{leg}-seed-{seed}.log"));
    if let Err(e) = std::fs::write(&path, plan.render_log()) {
        eprintln!("chaos_soak: cannot write {}: {e}", path.display());
    } else {
        eprintln!("chaos_soak: fault log → {}", path.display());
    }
}
