//! Regenerates fig9 of the paper's evaluation.

fn main() {
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::fig9::run(scale);
    cohmeleon_bench::figures::fig9::print(&data);
}
