//! Runs the ablation studies (coherent-DMA support, attribution accuracy,
//! exploration).

fn main() {
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::ablation::run(scale);
    cohmeleon_bench::figures::ablation::print(&data);
}
