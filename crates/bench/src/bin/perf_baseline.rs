//! `perf_baseline` — the tracked simulator-throughput benchmark.
//!
//! Runs fixed, fully deterministic suites through the experiment grid,
//! reports wall time and simulation throughput, and records the numbers in
//! `BENCH_hotpath.json` so every later PR is measured against the recorded
//! baseline. Two regimes are tracked:
//!
//! * `soc1 × quick` — small datasets, cache-resident (the original suite;
//!   its recorded baseline predates the experiment grid and is preserved).
//! * `soc6 × large` — the computer-vision SoC under Large/Extra-Large
//!   workloads, cache-thrashing (recorded as `soc6_scale`).
//!
//! Both tracked suites run on the [`Serial`] executor so wall times stay
//! comparable across machines and checkouts; a third measurement runs one
//! multi-seed grid under `Serial` and `WorkStealing`, asserts the per-cell
//! results are bit-identical, and records the parallel speedup
//! (`sweep_executor`). A fourth runs the same grid as two worker
//! *processes* (re-executions of this binary) through `ShardExecutor`,
//! verifies the merged record stream bit-identical to Serial, and records
//! the multi-process speedup (`sweep_shards`) — spawn and grid-rebuild
//! overhead included, so on a 1-CPU machine expect ≤ 1.0x. A fifth runs
//! the same grid through the fleet coordinator (in-process queen + one
//! loopback worker), verifies the checkpoint file byte-identical to
//! Serial's canonical stream, and records the per-cell dispatch overhead
//! (`fleet_dispatch`) — protocol round-trips, record validation and the
//! fsync-per-record checkpoint discipline, everything the fleet adds on
//! top of the raw simulation (see PERFORMANCE.md for methodology). A
//! sixth drives a loopback decision server with concurrent batched
//! clients, verifies every response against local frozen dispatch, and
//! records the serving throughput and batch round-trip latency
//! percentiles (`serve_dispatch`).
//!
//! ```text
//! perf_baseline [--smoke] [--out FILE] [--reps N]
//!
//!   --smoke   correctness-only: run a reduced suite, assert determinism,
//!             Serial/WorkStealing bit-equality and shard-merge
//!             bit-equality, write nothing (unless --out is given). For
//!             CI.
//!   --out     output JSON path (default BENCH_hotpath.json)
//!   --reps    timed repetitions; the best (fastest) rep is recorded
//!             (default 3)
//!   --shard I/N   internal worker mode for the sharded measurement
//!             (requires --out)
//! ```
//!
//! Each tracked entry keeps `baseline` (the first measurement ever
//! recorded on this machine/checkout — preserved across runs) and
//! `current` (the latest measurement). The speedup quoted is
//! `baseline.wall_s / current.wall_s`.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use cohmeleon_bench::policies::PolicyKind;
use cohmeleon_bench::tracked::{
    soc6_params, suite_grid, sweep_grid, SEED, SUITE, TRAIN_ITERATIONS,
};
use cohmeleon_cache::{set_default_walk_mode, TagStats, WalkMode};
use cohmeleon_core::agent::AgentBuilder;
use cohmeleon_core::policy::{FixedPolicy, Policy};
use cohmeleon_core::router::{AgentScope, PolicyRouter};
use cohmeleon_core::snapshot::{ArchParams, SystemSnapshot};
use cohmeleon_core::{
    AccelInstanceId, AccelKindId, CoherenceMode, FrozenSnapshot, ModeSet, PartitionId, State,
};
use cohmeleon_exp::{
    canonical_jsonl, merge_records, CellRecord, CellResult, Executor, Experiment, PolicySpec,
    Serial, ShardExecutor, ShardSpec, SweepGrid, WorkStealing,
};
use cohmeleon_fleet::{run_queen, run_worker, QueenOptions, WorkerOptions};
use cohmeleon_serve::{run_load, run_server, LoadOptions, LoadReport, ServeClient, ServeOptions};
use cohmeleon_soc::config::{soc1, soc6};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

/// The committed baseline record smoke mode guards against (regression
/// and bit-identity checks); distinct from `--out`, which smoke only
/// writes.
const BASELINE_FILE: &str = "BENCH_hotpath.json";

/// Logical CPUs visible to this process, recorded alongside every
/// measurement: wall-clock numbers are only comparable between runs that
/// saw the same parallelism (and the `sweep_*` speedups are bounded by
/// it).
fn cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

struct Args {
    smoke: bool,
    /// `Some` iff `--out` was passed explicitly.
    out_flag: Option<String>,
    reps: usize,
    /// Internal worker mode for the sharded-sweep measurement: run only
    /// this shard of the executor-speedup grid and write it to `--out`.
    shard: Option<ShardSpec>,
}

impl Args {
    fn out(&self) -> &str {
        self.out_flag.as_deref().unwrap_or("BENCH_hotpath.json")
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out_flag: None,
        reps: 3,
        shard: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out_flag = Some(it.next().ok_or("--out needs a path")?),
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--shard" => {
                args.shard = Some(
                    it.next()
                        .ok_or("--shard needs I/N")?
                        .parse()
                        .map_err(|e| format!("--shard: {e}"))?,
                );
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.shard.is_some() && args.out_flag.is_none() {
        return Err("--shard requires an explicit --out".into());
    }
    if args.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(args)
}

/// One measured run of `grid` under `executor`. Returns (wall seconds,
/// simulation events, invocations, total simulated cycles) — everything
/// but the wall time is deterministic.
fn run_grid<E: Executor>(grid: &SweepGrid, executor: &E) -> (f64, u64, u64, u64) {
    let start = Instant::now();
    let mut events = 0u64;
    let mut invocations = 0u64;
    let mut sim_cycles = 0u64;
    grid.execute(executor, &mut |result: CellResult| {
        events += result.result.total_events();
        invocations += result.result.invocations().count() as u64;
        sim_cycles += result.result.total_duration();
    });
    (start.elapsed().as_secs_f64(), events, invocations, sim_cycles)
}

/// The `router_dispatch` micro-benchmark: `DISPATCH_ROUNDS` decide +
/// observe rounds spread over a `PerInstance` router's sub-agents.
/// Fixed-mode sub-agents isolate the *dispatch* cost (key derivation +
/// agent lookup + forwarding) from agent internals; the allocation-free
/// pin for the same path is `crates/core/tests/router_alloc.rs`.
const DISPATCH_INSTANCES: u16 = 12;
const DISPATCH_ROUNDS: u64 = 200_000;

fn dispatch_router() -> PolicyRouter {
    let mut router = PolicyRouter::new(AgentScope::PerInstance, 0, |_, _| {
        Box::new(FixedPolicy::new(CoherenceMode::CohDma))
    });
    let topology: Vec<(AccelInstanceId, AccelKindId)> = (0..DISPATCH_INSTANCES)
        .map(|i| (AccelInstanceId(i), AccelKindId(i % 3)))
        .collect();
    router.bind_topology(&topology);
    router
}

/// One timed run: returns (wall seconds, decides performed).
fn run_router_dispatch() -> (f64, u64) {
    let mut router = dispatch_router();
    let snapshot = SystemSnapshot::new(
        ArchParams::new(32 * 1024, 256 * 1024, 2),
        vec![],
        64 * 1024,
        vec![PartitionId(0)],
    );
    let measurement = cohmeleon_core::reward::InvocationMeasurement {
        total_cycles: 10_000,
        accel_active_cycles: 5_000,
        accel_comm_cycles: 2_500,
        offchip_accesses: 100.0,
        footprint_bytes: 4096,
    };
    let start = Instant::now();
    let mut check = 0usize;
    for round in 0..DISPATCH_ROUNDS {
        let i = (round % DISPATCH_INSTANCES as u64) as u16;
        let d = router.decide(&snapshot, ModeSet::all(), AccelInstanceId(i));
        check += d.mode.index();
        router.observe(AccelInstanceId(i), &d, &measurement);
    }
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(
        check,
        DISPATCH_ROUNDS as usize * CoherenceMode::CohDma.index(),
        "dispatch returned an unexpected mode"
    );
    (wall, DISPATCH_ROUNDS)
}

/// The `serve_dispatch` benchmark: N loopback clients batch-query a
/// decision server holding a frozen table, with every response re-checked
/// against local frozen dispatch (`verify`), so a recorded number is by
/// construction a *correct*-dispatch number. Batch round-trip latency
/// lands in the load generator's log-bucket histogram (p50/p99/p999).
const SERVE_CLIENTS: usize = 2;
const SERVE_BATCH: usize = 16;
const SERVE_BATCHES: usize = 400;

/// A deterministic full-coverage snapshot for the serve benchmark: the
/// argmax pattern varies across all 243 states so dispatch is not a
/// constant-answer fast path.
fn serve_snapshot() -> FrozenSnapshot {
    let mut text = String::from("# cohmeleon q-table v1\n");
    for s in 0..State::COUNT {
        let _ = write!(text, "{s}");
        for a in 0..4usize {
            let v = ((s * 31 + a * 7) % 13) as f64 - 6.0;
            let _ = write!(text, "\t{v}");
        }
        text.push('\n');
    }
    FrozenSnapshot::parse(&text, State::COUNT).expect("synthetic q-table parses")
}

/// One serve run: spins a server on a loopback port, drives
/// `SERVE_CLIENTS` concurrent clients for `batches` verified batches
/// each, shuts the server down. Returns the load-side report; the caller
/// must refuse to record if `mismatches` or `unverified` is non-zero.
fn run_serve_dispatch(batches: usize) -> Result<LoadReport, String> {
    let snapshot = serve_snapshot();
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let options = LoadOptions {
        clients: SERVE_CLIENTS,
        batches,
        batch_size: SERVE_BATCH,
        verify: vec![snapshot.clone()],
        ..LoadOptions::default()
    };
    std::thread::scope(|scope| {
        let server =
            scope.spawn(|| run_server(listener, snapshot, &ServeOptions::default()));
        let load = run_load(&addr, &options).map_err(|e| format!("load: {e}"));
        let shutdown = ServeClient::connect(&addr, "bench-admin")
            .and_then(|c| c.shutdown())
            .map_err(|e| format!("shutdown: {e}"));
        let report = load?;
        shutdown?;
        server
            .join()
            .expect("server thread")
            .map_err(|e| format!("server: {e}"))?;
        Ok(report)
    })
}

/// The soc1 × quick suite with Cohmeleon routed through a Global
/// `PolicyRouter` instead of running bare — must be bit-identical to
/// [`suite_grid`]'s cohmeleon cells (the router forwards every call).
fn routed_suite_grid(params: &GeneratorParams, train_iterations: usize) -> SweepGrid {
    let config = soc1();
    let train = generate_app(&config, params, 1);
    let test = generate_app(&config, params, 2);
    Experiment::train_test(config, train, test)
        .policy(PolicySpec::custom("cohmeleon", |_config, iters, seed| {
            Box::new(AgentBuilder::paper(iters, seed).label("cohmeleon").build_routed())
        }))
        .seed(SEED)
        .train_iterations(train_iterations)
        .build()
        .expect("routed suite is non-empty")
}

/// The identity gate for agent orchestration: the Global-routed cohmeleon
/// cell must hash exactly like the bare agent's cell in the tracked suite
/// (same params, same seed) through the full engine.
fn routed_matches_bare(params: &GeneratorParams, train_iterations: usize) -> bool {
    let bare = cell_hashes(&suite_grid(soc1(), params, train_iterations), &Serial);
    let routed = cell_hashes(&routed_suite_grid(params, train_iterations), &Serial);
    let cohmeleon_index = SUITE
        .iter()
        .position(|k| *k == PolicyKind::Cohmeleon)
        .expect("suite contains cohmeleon");
    // The routed grid holds exactly the one cohmeleon cell.
    routed.len() == 1 && routed[0] == bare[cohmeleon_index]
}

/// One fleet run of `grid`: an in-process queen and one loopback worker
/// thread, fresh checkpoint. Returns the wall time and the finished
/// checkpoint's bytes (the caller verifies them against Serial's
/// canonical stream before recording anything).
fn run_fleet_dispatch(grid: &SweepGrid) -> Result<(f64, String), String> {
    let path = std::env::temp_dir().join(format!(
        "cohmeleon-perf-fleet-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let options = QueenOptions::new("tracked", false);
    let start = Instant::now();
    let report = std::thread::scope(|scope| {
        let queen = scope.spawn(|| run_queen(grid, listener, &path, &options));
        let worker = scope.spawn(|| {
            run_worker(&addr, |_, _| Ok(grid.clone()), &WorkerOptions::new("local"))
        });
        worker
            .join()
            .expect("worker thread")
            .map_err(|e| format!("worker: {e}"))?;
        queen
            .join()
            .expect("queen thread")
            .map_err(|e| format!("queen: {e}"))
    })?;
    let wall = start.elapsed().as_secs_f64();
    if !report.complete {
        return Err("fleet run did not complete the grid".into());
    }
    let bytes = std::fs::read_to_string(&path).map_err(|e| format!("read checkpoint: {e}"))?;
    let _ = std::fs::remove_file(&path);
    Ok((wall, bytes))
}

/// Runs the tracked soc6-scale suite under `mode` and returns the summed
/// tag-walk counters plus the per-cell structural hashes. The counters
/// are deterministic op counts (associative set traversals, probes, hint
/// hits…), so the `tag_walk` section's quoted reduction is
/// machine-independent — unlike wall time. The process-wide default walk
/// mode is restored to `Run` afterwards; `perf_baseline` runs its suites
/// sequentially, so flipping it is safe here.
fn run_tag_walk(mode: WalkMode) -> (TagStats, Vec<u64>) {
    set_default_walk_mode(mode);
    let grid = suite_grid(soc6(), &soc6_params(), TRAIN_ITERATIONS);
    let mut stats = TagStats::default();
    let mut hashes = vec![0u64; grid.num_cells()];
    grid.execute(&Serial, &mut |result: CellResult| {
        stats.merge(&result.result.tag_walk);
        hashes[grid.cell_index(result.cell)] = result.result.structural_hash();
    });
    set_default_walk_mode(WalkMode::Run);
    (stats, hashes)
}

fn tag_walk_json(reference: &TagStats, run: &TagStats) -> String {
    format!(
        "{{\"reference_scans\": {}, \"run_scans\": {}, \"scan_ratio\": {:.2}, \
         \"reference_probes\": {}, \"run_probes\": {}, \"fused_probes\": {}, \
         \"hint_hits\": {}, \"empty_skips\": {}, \"stripe_probes\": {}, \
         \"stripe_members\": {}}}",
        reference.scans,
        run.scans,
        reference.scans as f64 / run.scans.max(1) as f64,
        reference.probes,
        run.probes,
        run.fused_probes,
        run.hint_hits,
        run.empty_skips,
        run.stripe_probes,
        run.stripe_members,
    )
}

/// Per-cell structural hashes of a grid run, indexed densely.
fn cell_hashes<E: Executor>(grid: &SweepGrid, executor: &E) -> Vec<u64> {
    let mut hashes = vec![0u64; grid.num_cells()];
    grid.execute(executor, &mut |result: CellResult| {
        hashes[grid.cell_index(result.cell)] = result.result.structural_hash();
    });
    hashes
}

fn measurement_json(wall_s: f64, events: u64, invocations: u64, sim_cycles: u64) -> String {
    // Microsecond resolution: the suite runs in single-digit milliseconds,
    // so coarser rounding would dominate the recorded speedups.
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"wall_s\": {wall_s:.6}, \"sim_events\": {events}, \"events_per_s\": {:.0}, \
         \"invocations\": {invocations}, \"sim_cycles\": {sim_cycles}, \
         \"sim_cycles_per_s\": {:.3e}, \"cpus\": {}}}",
        events as f64 / wall_s,
        sim_cycles as f64 / wall_s,
        cpus(),
    );
    s
}

/// Times `reps` serial runs of `grid` and returns the fastest.
fn best_of(grid: &SweepGrid, reps: usize, label: &str) -> (f64, u64, u64, u64) {
    let mut best: Option<(f64, u64, u64, u64)> = None;
    for rep in 0..reps {
        let m = run_grid(grid, &Serial);
        println!(
            "  {label} rep {}: {:.3} s wall, {} events, {:.0} events/s",
            rep + 1,
            m.0,
            m.1,
            m.1 as f64 / m.0
        );
        if best.is_none_or(|b| m.0 < b.0) {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

/// Extracts the `{...}` value of a `"key":` from a JSON report (brace
/// matching; no JSON library available offline).
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let open = json[at..].find('{')? + at;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Pulls a numeric field out of a flat JSON object.
fn extract_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn smoke(args: &Args) -> ExitCode {
    // Correctness only: a reduced suite, run twice, must be deterministic,
    // complete, and bit-identical between Serial and WorkStealing. No
    // timing assertions (CI machines vary); the point is that the harness
    // can never bit-rot.
    let params = GeneratorParams {
        phases: 1,
        ..GeneratorParams::quick()
    };
    let grid = suite_grid(soc1(), &params, 1);
    let (_, e1, i1, c1) = run_grid(&grid, &Serial);
    let (_, e2, i2, c2) = run_grid(&grid, &Serial);
    if (e1, i1, c1) != (e2, i2, c2) {
        eprintln!(
            "perf_baseline --smoke: nondeterministic suite: {e1}/{i1}/{c1} vs {e2}/{i2}/{c2}"
        );
        return ExitCode::FAILURE;
    }
    if i1 == 0 || e1 == 0 {
        eprintln!("perf_baseline --smoke: suite ran no work (events={e1}, invocations={i1})");
        return ExitCode::FAILURE;
    }
    if cell_hashes(&grid, &Serial) != cell_hashes(&grid, &WorkStealing::new()) {
        eprintln!("perf_baseline --smoke: WorkStealing results differ from Serial");
        return ExitCode::FAILURE;
    }
    // Every shard partition must fold back into the serial record stream
    // bit for bit (in-process here; the subprocess path is the sweep
    // binary's CI smoke).
    let canon = canonical_jsonl(&grid.collect_records(&Serial));
    for n in [2usize, 3] {
        let batches: Vec<Vec<CellRecord>> = (0..n)
            .map(|i| grid.collect_shard_records(ShardSpec::new(i, n), &Serial))
            .collect();
        match merge_records(batches, Some(&grid)) {
            Ok(merged) if canonical_jsonl(&merged) == canon => {}
            Ok(_) => {
                eprintln!("perf_baseline --smoke: {n}-shard merge is not bit-identical");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf_baseline --smoke: {n}-shard merge failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The fleet path (queen + loopback worker) must land the identical
    // bytes the Serial run canonicalises to — dispatch is pure plumbing.
    match run_fleet_dispatch(&grid) {
        Ok((_wall, bytes)) if bytes == canon => {}
        Ok(_) => {
            eprintln!("perf_baseline --smoke: fleet checkpoint is not bit-identical to Serial");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("perf_baseline --smoke: fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Agent orchestration must be invisible in the Global configuration:
    // cohmeleon routed through a Global `PolicyRouter` reproduces the
    // bare agent's cell hash through the full engine.
    if !routed_matches_bare(&params, 1) {
        eprintln!("perf_baseline --smoke: Global-routed cohmeleon differs from the bare agent");
        return ExitCode::FAILURE;
    }
    // And the dispatch micro-benchmark itself must run (its determinism
    // assertion is inside).
    let (_, dispatch_decides) = run_router_dispatch();

    // The serving path: a real loopback server, concurrent clients, every
    // response recomputed locally against the same frozen table.
    match run_serve_dispatch(25) {
        Ok(r) if r.mismatches == 0 && r.unverified == 0 => {
            println!(
                "  serve: {} verified decisions over {} loopback clients",
                r.decisions, SERVE_CLIENTS
            );
        }
        Ok(r) => {
            eprintln!(
                "perf_baseline --smoke: serve dispatch diverged from local frozen dispatch \
                 ({} mismatches, {} unverified)",
                r.mismatches, r.unverified
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("perf_baseline --smoke: serve run failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Tracked soc6-scale suite (the cache-thrashing regime): deterministic
    // counters must reproduce the committed baseline bit for bit, and the
    // measured throughput must stay within 10% of it. The throughput
    // guard is wall-clock and therefore only meaningful on the machine
    // that recorded the baseline — set COHMELEON_SKIP_PERF_GUARD=1 to
    // skip it (the bit-identity check always runs).
    let grid6 = suite_grid(soc6(), &soc6_params(), TRAIN_ITERATIONS);
    let mut wall6 = f64::MAX;
    let mut pins6 = (0u64, 0u64, 0u64);
    for rep in 0..3 {
        let (w, e, i, c) = run_grid(&grid6, &Serial);
        if rep > 0 && pins6 != (e, i, c) {
            eprintln!(
                "perf_baseline --smoke: nondeterministic soc6 suite: \
                 {:?} vs {:?}",
                pins6,
                (e, i, c)
            );
            return ExitCode::FAILURE;
        }
        wall6 = wall6.min(w);
        pins6 = (e, i, c);
    }
    match std::fs::read_to_string(BASELINE_FILE) {
        Ok(json) => {
            let Some(baseline6) = extract_object(&json, "soc6_scale")
                .and_then(|sect| extract_object(sect, "baseline"))
                .map(str::to_owned)
            else {
                eprintln!(
                    "perf_baseline --smoke: {BASELINE_FILE} has no soc6_scale baseline — \
                     run the full benchmark once to record it"
                );
                return ExitCode::FAILURE;
            };
            let pinned = |field: &str| extract_field(&baseline6, field).map(|v| v as u64);
            let expected = (
                pinned("sim_events").unwrap_or(0),
                pinned("invocations").unwrap_or(0),
                pinned("sim_cycles").unwrap_or(0),
            );
            if pins6 != expected {
                eprintln!(
                    "perf_baseline --smoke: soc6 suite diverged from the committed baseline: \
                     got {pins6:?}, expected {expected:?} (events, invocations, cycles) — \
                     modeled behaviour changed; regenerate {BASELINE_FILE} only for \
                     *intentional* model changes"
                );
                return ExitCode::FAILURE;
            }
            let guard_skipped = std::env::var_os("COHMELEON_SKIP_PERF_GUARD").is_some();
            let events_per_s = pins6.0 as f64 / wall6;
            if let Some(base_eps) = extract_field(&baseline6, "events_per_s") {
                if !guard_skipped && events_per_s < 0.9 * base_eps {
                    eprintln!(
                        "perf_baseline --smoke: soc6 throughput regressed >10%: \
                         {events_per_s:.0} events/s vs baseline {base_eps:.0} \
                         (COHMELEON_SKIP_PERF_GUARD=1 skips this on machines that \
                         did not record the baseline)"
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "  soc6-scale: {:.0} events/s vs baseline {base_eps:.0} ({})",
                    events_per_s,
                    if guard_skipped { "guard skipped" } else { "within guard" }
                );
            }
        }
        Err(_) => {
            // Fresh checkout without a recorded baseline: nothing to
            // compare against; determinism was still asserted above.
            println!("  soc6-scale: no {BASELINE_FILE}, baseline checks skipped");
        }
    }

    // Tag-walk op accounting: both walk modes must produce identical cell
    // hashes, the run-level walk must hold its ≥2x scan reduction on the
    // tracked suite, and the deterministic scan totals must reproduce the
    // committed tag_walk baseline bit for bit. These are op counts, not
    // wall time — always checked, even under COHMELEON_SKIP_PERF_GUARD.
    let (run_stats, run_hashes) = run_tag_walk(WalkMode::Run);
    let (reference_stats, reference_hashes) = run_tag_walk(WalkMode::PerLine);
    if run_hashes != reference_hashes {
        eprintln!("perf_baseline --smoke: Run walk cell hashes differ from the PerLine reference");
        return ExitCode::FAILURE;
    }
    if reference_stats.scans < 2 * run_stats.scans {
        eprintln!(
            "perf_baseline --smoke: run-level walk lost its 2x scan reduction: \
             {} reference scans vs {} run scans",
            reference_stats.scans, run_stats.scans
        );
        return ExitCode::FAILURE;
    }
    if let Ok(json) = std::fs::read_to_string(BASELINE_FILE) {
        if let Some(walk) = extract_object(&json, "tag_walk")
            .and_then(|sect| extract_object(sect, "baseline"))
        {
            let pinned = |field: &str| extract_field(walk, field).map(|v| v as u64);
            let expected = (
                pinned("reference_scans").unwrap_or(0),
                pinned("run_scans").unwrap_or(0),
            );
            if (reference_stats.scans, run_stats.scans) != expected {
                eprintln!(
                    "perf_baseline --smoke: tag-walk scan totals diverged from the committed \
                     baseline: got {:?}, expected {expected:?} (reference, run) — probe \
                     accounting changed; regenerate {BASELINE_FILE} only for *intentional* \
                     walk changes",
                    (reference_stats.scans, run_stats.scans)
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "  tag_walk: {} reference scans vs {} run scans ({:.2}x, hashes identical)",
        reference_stats.scans,
        run_stats.scans,
        reference_stats.scans as f64 / run_stats.scans.max(1) as f64
    );

    println!(
        "perf_baseline --smoke: ok ({e1} events, {i1} invocations, {c1} simulated cycles; \
         soc6 {}/{}/{}; executors bit-identical; 2- and 3-shard merges bit-identical; \
         Global-routed cohmeleon bit-identical; {dispatch_decides} router dispatches)",
        pins6.0, pins6.1, pins6.2
    );
    println!("  fleet: queen + loopback worker checkpoint bit-identical to Serial");
    if let Some(out) = &args.out_flag {
        // Smoke runs make no timing claims, so no wall-time fields.
        let body = format!("{{\"sim_events\": {e1}, \"invocations\": {i1}, \"sim_cycles\": {c1}}}");
        if let Err(e) = std::fs::write(out, format!("{{\"smoke\": {body}}}\n")) {
            eprintln!("perf_baseline --smoke: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(shard) = args.shard {
        // Worker mode for the sharded-sweep measurement: run this
        // shard's cells of the measurement grid and write them out.
        let records = sweep_grid().collect_shard_records(shard, &Serial);
        if let Err(e) = std::fs::write(args.out(), canonical_jsonl(&records)) {
            eprintln!("perf_baseline: shard {shard}: cannot write {}: {e}", args.out());
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    if args.smoke {
        return smoke(&args);
    }

    println!(
        "perf_baseline: {:?} suites, {} train iteration(s), {} rep(s)",
        SUITE, TRAIN_ITERATIONS, args.reps
    );

    // Tracked suite 1: soc1 × quick (cache-resident).
    let grid1 = suite_grid(soc1(), &GeneratorParams::quick(), TRAIN_ITERATIONS);
    let (wall_s, events, invocations, sim_cycles) = best_of(&grid1, args.reps, "soc1×quick");
    let current = measurement_json(wall_s, events, invocations, sim_cycles);

    // Tracked suite 2: soc6 × large (cache-thrashing).
    let grid6 = suite_grid(soc6(), &soc6_params(), TRAIN_ITERATIONS);
    let (wall6, events6, invocations6, cycles6) = best_of(&grid6, args.reps, "soc6×large");
    let current6 = measurement_json(wall6, events6, invocations6, cycles6);

    // Tag-walk op accounting on the same soc6 suite: one run per walk
    // mode, cell hashes verified identical before any number is recorded.
    // Scan totals are deterministic, so the recorded reduction is a claim
    // about work, not about this machine's clock.
    let (run_stats, run_hashes) = run_tag_walk(WalkMode::Run);
    let (reference_stats, reference_hashes) = run_tag_walk(WalkMode::PerLine);
    if run_hashes != reference_hashes {
        eprintln!(
            "perf_baseline: Run walk cell hashes differ from the PerLine reference — \
             refusing to record"
        );
        return ExitCode::FAILURE;
    }
    let current_walk = tag_walk_json(&reference_stats, &run_stats);
    println!(
        "  tag_walk: {} reference scans vs {} run scans → {:.2}x fewer \
         ({} fused probes, {} hint hits, {} empty-set skips; hashes identical)",
        reference_stats.scans,
        run_stats.scans,
        reference_stats.scans as f64 / run_stats.scans.max(1) as f64,
        run_stats.fused_probes,
        run_stats.hint_hits,
        run_stats.empty_skips
    );

    // Executor speedup: one multi-seed grid, Serial vs WorkStealing,
    // verified bit-identical per cell before any number is recorded.
    let sweep_grid = sweep_grid();
    // One serial pass serves both references: per-cell hashes against
    // WorkStealing here, the canonical record stream against the
    // sharded run below (Serial delivers in dense order, matching
    // cell_hashes' indexing).
    let sweep_serial_records = sweep_grid.collect_records(&Serial);
    let serial_hashes: Vec<u64> = sweep_serial_records
        .iter()
        .map(|r| r.structural_hash)
        .collect();
    if serial_hashes != cell_hashes(&sweep_grid, &WorkStealing::new()) {
        eprintln!("perf_baseline: WorkStealing results differ from Serial — refusing to record");
        return ExitCode::FAILURE;
    }
    let mut serial_wall = f64::MAX;
    let mut steal_wall = f64::MAX;
    for _ in 0..args.reps {
        serial_wall = serial_wall.min(run_grid(&sweep_grid, &Serial).0);
        steal_wall = steal_wall.min(run_grid(&sweep_grid, &WorkStealing::new()).0);
    }
    let threads = WorkStealing::new().thread_count(sweep_grid.num_cells());
    let sweep_speedup = serial_wall / steal_wall;
    let current_sweep = format!(
        "{{\"cells\": {}, \"threads\": {threads}, \"cpus\": {}, \
         \"serial_wall_s\": {serial_wall:.6}, \"worksteal_wall_s\": {steal_wall:.6}, \
         \"speedup\": {sweep_speedup:.2}}}",
        sweep_grid.num_cells(),
        cpus()
    );
    println!(
        "  sweep: {} cells, {threads} threads: serial {serial_wall:.3} s, \
         work-stealing {steal_wall:.3} s → {sweep_speedup:.2}x (bit-identical)",
        sweep_grid.num_cells()
    );

    // Sharded-process speedup on the same grid: each worker is a
    // re-execution of this binary (`--shard i/n`); the merged stream is
    // verified bit-identical to Serial before any number is recorded.
    const SHARD_COUNT: usize = 2;
    let shard_dir =
        std::env::temp_dir().join(format!("cohmeleon-perf-shards-{}", std::process::id()));
    let serial_canon = canonical_jsonl(&sweep_serial_records);
    let mut shard_wall = f64::MAX;
    for _ in 0..args.reps {
        let start = Instant::now();
        let merged = ShardExecutor::new(SHARD_COUNT).run(&sweep_grid, &shard_dir, |spec, out| {
            vec![
                "--shard".to_owned(),
                spec.to_string(),
                "--out".to_owned(),
                out.display().to_string(),
            ]
        });
        let wall = start.elapsed().as_secs_f64();
        match merged {
            Ok(records) if canonical_jsonl(&records) == serial_canon => {
                shard_wall = shard_wall.min(wall);
            }
            Ok(_) => {
                eprintln!(
                    "perf_baseline: sharded results differ from Serial — refusing to record"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf_baseline: sharded run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&shard_dir);
    let shard_speedup = serial_wall / shard_wall;
    let current_shards = format!(
        "{{\"cells\": {}, \"shards\": {SHARD_COUNT}, \"cpus\": {}, \
         \"serial_wall_s\": {serial_wall:.6}, \"shard_wall_s\": {shard_wall:.6}, \
         \"speedup\": {shard_speedup:.2}}}",
        sweep_grid.num_cells(),
        cpus()
    );
    println!(
        "  sweep: {SHARD_COUNT} worker processes: {shard_wall:.3} s → {shard_speedup:.2}x \
         vs serial (bit-identical; includes process spawn + rebuild cost)"
    );

    // Fleet dispatch overhead on the same grid: an in-process queen and
    // one loopback worker vs the direct serial run. Everything above the
    // raw simulation — protocol round-trips, validation, the
    // fsync-per-record checkpoint — shows up as overhead per cell. The
    // checkpoint bytes are verified identical to Serial's canonical
    // stream before any number is recorded.
    let mut fleet_wall = f64::MAX;
    for _ in 0..args.reps {
        match run_fleet_dispatch(&sweep_grid) {
            Ok((wall, bytes)) if bytes == serial_canon => fleet_wall = fleet_wall.min(wall),
            Ok(_) => {
                eprintln!(
                    "perf_baseline: fleet checkpoint differs from Serial — refusing to record"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf_baseline: fleet run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let fleet_overhead_us =
        (fleet_wall - serial_wall).max(0.0) / sweep_grid.num_cells() as f64 * 1e6;
    let current_fleet = format!(
        "{{\"cells\": {}, \"serial_wall_s\": {serial_wall:.6}, \
         \"fleet_wall_s\": {fleet_wall:.6}, \"overhead_us_per_cell\": {fleet_overhead_us:.1}, \
         \"cpus\": {}}}",
        sweep_grid.num_cells(),
        cpus()
    );
    println!(
        "  fleet: queen + 1 loopback worker: {fleet_wall:.3} s vs serial {serial_wall:.3} s \
         → {fleet_overhead_us:.1} µs/cell dispatch overhead (bit-identical)"
    );

    // Router dispatch: PerInstance routing on the sense→decide path
    // (fixed-mode sub-agents isolate the dispatch cost; the matching
    // allocation-free pin is crates/core/tests/router_alloc.rs). Verified
    // bit-identical through the full engine before any number is
    // recorded: the Global-routed suite must hash like the bare suite.
    if !routed_matches_bare(&GeneratorParams::quick(), TRAIN_ITERATIONS) {
        eprintln!(
            "perf_baseline: Global-routed cohmeleon differs from the bare agent — refusing to record"
        );
        return ExitCode::FAILURE;
    }
    let mut dispatch_wall = f64::MAX;
    let mut dispatch_decides = 0u64;
    for _ in 0..args.reps {
        let (wall, decides) = run_router_dispatch();
        dispatch_wall = dispatch_wall.min(wall);
        dispatch_decides = decides;
    }
    let current_dispatch = format!(
        "{{\"decides\": {dispatch_decides}, \"instances\": {DISPATCH_INSTANCES}, \
         \"wall_s\": {dispatch_wall:.6}, \"decides_per_s\": {:.0}, \"cpus\": {}}}",
        dispatch_decides as f64 / dispatch_wall,
        cpus()
    );
    println!(
        "  router_dispatch: {dispatch_decides} decide/observe rounds over \
         {DISPATCH_INSTANCES} per-instance agents: {dispatch_wall:.3} s → {:.0} decides/s",
        dispatch_decides as f64 / dispatch_wall
    );

    // Serve dispatch: a real loopback server under concurrent batched
    // clients, every response verified against local frozen dispatch
    // before any number is recorded. Latency is batch round-trip time
    // from the client side (log-bucket histogram).
    let mut serve_best: Option<LoadReport> = None;
    for _ in 0..args.reps {
        match run_serve_dispatch(SERVE_BATCHES) {
            Ok(r) if r.mismatches == 0 && r.unverified == 0 => {
                if serve_best
                    .as_ref()
                    .is_none_or(|b| r.elapsed < b.elapsed)
                {
                    serve_best = Some(r);
                }
            }
            Ok(r) => {
                eprintln!(
                    "perf_baseline: serve dispatch diverged from local frozen dispatch \
                     ({} mismatches, {} unverified) — refusing to record",
                    r.mismatches, r.unverified
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf_baseline: serve run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let serve = serve_best.expect("at least one serve rep");
    let current_serve = format!(
        "{{\"decisions\": {}, \"clients\": {SERVE_CLIENTS}, \"batch\": {SERVE_BATCH}, \
         \"wall_s\": {:.6}, \"decisions_per_s\": {:.0}, \"batch_p50_ns\": {}, \
         \"batch_p99_ns\": {}, \"batch_p999_ns\": {}, \"cpus\": {}}}",
        serve.decisions,
        serve.elapsed.as_secs_f64(),
        serve.throughput(),
        serve.histogram.p50(),
        serve.histogram.p99(),
        serve.histogram.p999(),
        cpus()
    );
    println!(
        "  serve_dispatch: {} decisions over {SERVE_CLIENTS} loopback clients × {SERVE_BATCH}-query \
         batches: {:.3} s → {:.0} decisions/s, batch RTT p50 {}ns p99 {}ns (all verified)",
        serve.decisions,
        serve.elapsed.as_secs_f64(),
        serve.throughput(),
        serve.histogram.p50(),
        serve.histogram.p99()
    );

    let previous = std::fs::read_to_string(args.out()).ok();
    // The first "baseline" object in the file is the top-level soc1 one
    // (soc6_scale is written after it).
    let baseline = previous
        .as_deref()
        .and_then(|json| extract_object(json, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current.clone());
    let baseline6 = previous
        .as_deref()
        .and_then(|json| extract_object(json, "soc6_scale"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current6.clone());
    let baseline_dispatch = previous
        .as_deref()
        .and_then(|json| extract_object(json, "router_dispatch"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current_dispatch.clone());
    // The sweep sections follow the same preserve-baseline-on-rerun scheme
    // as `router_dispatch`: the first recorded measurement sticks, later
    // runs only refresh `current`. Files written by older versions kept a
    // single flat object per sweep section — those carry no baseline, so
    // the current run seeds it.
    let baseline_sweep = previous
        .as_deref()
        .and_then(|json| extract_object(json, "sweep_executor"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current_sweep.clone());
    let baseline_shards = previous
        .as_deref()
        .and_then(|json| extract_object(json, "sweep_shards"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current_shards.clone());
    let baseline_fleet = previous
        .as_deref()
        .and_then(|json| extract_object(json, "fleet_dispatch"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current_fleet.clone());
    let baseline_serve = previous
        .as_deref()
        .and_then(|json| extract_object(json, "serve_dispatch"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current_serve.clone());
    let baseline_walk = previous
        .as_deref()
        .and_then(|json| extract_object(json, "tag_walk"))
        .and_then(|sect| extract_object(sect, "baseline"))
        .map(str::to_owned)
        .unwrap_or_else(|| current_walk.clone());

    let report = format!(
        "{{\n  \"suite\": \"soc1 x quick x [fixed-non-coh-dma, manual, cohmeleon]\",\n  \
         \"baseline\": {baseline},\n  \"current\": {current},\n  \
         \"soc6_scale\": {{\n    \
         \"suite\": \"soc6 x large/extra-large x [fixed-non-coh-dma, manual, cohmeleon]\",\n    \
         \"baseline\": {baseline6},\n    \"current\": {current6}\n  }},\n  \
         \"sweep_executor\": {{\n    \
         \"suite\": \"soc1 x quick x 3 policies x 4 seeds, Serial vs WorkStealing\",\n    \
         \"baseline\": {baseline_sweep},\n    \"current\": {current_sweep}\n  }},\n  \
         \"sweep_shards\": {{\n    \
         \"suite\": \"same grid, 2 worker processes via ShardExecutor (spawn + rebuild included)\",\n    \
         \"baseline\": {baseline_shards},\n    \"current\": {current_shards}\n  }},\n  \
         \"fleet_dispatch\": {{\n    \
         \"suite\": \"same grid, in-process queen + 1 loopback worker vs direct Serial (protocol + validation + fsync overhead)\",\n    \
         \"baseline\": {baseline_fleet},\n    \"current\": {current_fleet}\n  }},\n  \
         \"router_dispatch\": {{\n    \
         \"suite\": \"per-instance router, fixed sub-agents, decide+observe (alloc-free pin: core router_alloc test)\",\n    \
         \"baseline\": {baseline_dispatch},\n    \"current\": {current_dispatch}\n  }},\n  \
         \"serve_dispatch\": {{\n    \
         \"suite\": \"loopback decision server, 2 clients x 16-query batches, every response verified vs local frozen dispatch\",\n    \
         \"baseline\": {baseline_serve},\n    \"current\": {current_serve}\n  }},\n  \
         \"tag_walk\": {{\n    \
         \"suite\": \"soc6-scale suite, Run vs PerLine walk mode, deterministic tag-array op counts (hashes verified identical)\",\n    \
         \"baseline\": {baseline_walk},\n    \"current\": {current_walk}\n  }}\n}}\n"
    );
    if let Err(e) = std::fs::write(args.out(), &report) {
        eprintln!("perf_baseline: cannot write {}: {e}", args.out());
        return ExitCode::FAILURE;
    }

    for (label, baseline_json, wall, evs) in [
        ("soc1×quick", baseline.as_str(), wall_s, events),
        ("soc6×large", baseline6.as_str(), wall6, events6),
    ] {
        if let Some(b) = extract_field(baseline_json, "wall_s") {
            println!(
                "perf_baseline: {label} {wall:.3} s wall ({:.0} events/s); \
                 baseline {b:.3} s → speedup {:.2}x",
                evs as f64 / wall,
                b / wall
            );
        }
    }
    println!("perf_baseline: wrote {}", args.out());
    ExitCode::SUCCESS
}
