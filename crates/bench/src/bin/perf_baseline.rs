//! `perf_baseline` — the tracked simulator-throughput benchmark.
//!
//! Runs a fixed, fully deterministic suite (soc1 × the quick generator ×
//! three policies: fixed-non-coh-dma, manual, cohmeleon) through the
//! train/test protocol, reports wall time and simulation throughput, and
//! records the numbers in `BENCH_hotpath.json` so every later PR is
//! measured against the recorded baseline.
//!
//! ```text
//! perf_baseline [--smoke] [--out FILE] [--reps N]
//!
//!   --smoke   correctness-only: run a reduced suite once, assert the
//!             simulation completed and was deterministic, write nothing
//!             (unless --out is given). For CI.
//!   --out     output JSON path (default BENCH_hotpath.json)
//!   --reps    timed repetitions; the best (fastest) rep is recorded
//!             (default 3)
//! ```
//!
//! The JSON keeps two entries: `baseline` (the first measurement ever
//! recorded on this machine/checkout — preserved across runs) and
//! `current` (the latest measurement). The speedup quoted is
//! `baseline.wall_s / current.wall_s`.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use cohmeleon_bench::policies::{build_policy, PolicyKind};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::runner::run_protocol;

/// Policies in the fixed suite, in run order.
const SUITE: [PolicyKind; 3] = [PolicyKind::FixedNonCoh, PolicyKind::Manual, PolicyKind::Cohmeleon];
const TRAIN_ITERATIONS: usize = 2;
const SEED: u64 = 7;

struct Args {
    smoke: bool,
    /// `Some` iff `--out` was passed explicitly.
    out_flag: Option<String>,
    reps: usize,
}

impl Args {
    fn out(&self) -> &str {
        self.out_flag.as_deref().unwrap_or("BENCH_hotpath.json")
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out_flag: None,
        reps: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out_flag = Some(it.next().ok_or("--out needs a path")?),
            "--reps" => {
                args.reps = it
                    .next()
                    .ok_or("--reps needs a count")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(args)
}

/// One measured run of the full suite. Returns (wall seconds, simulation
/// events, invocations, total simulated cycles) — everything but the wall
/// time is deterministic.
fn run_suite(train_iterations: usize, params: &GeneratorParams) -> (f64, u64, u64, u64) {
    let config = soc1();
    let train = generate_app(&config, params, 1);
    let test = generate_app(&config, params, 2);
    let start = Instant::now();
    let mut events = 0u64;
    let mut invocations = 0u64;
    let mut sim_cycles = 0u64;
    for kind in SUITE {
        let mut policy = build_policy(kind, &config, train_iterations, SEED);
        let result = run_protocol(&config, &train, &test, policy.as_mut(), train_iterations, SEED);
        events += result.total_events();
        invocations += result.invocations().count() as u64;
        sim_cycles += result.total_duration();
    }
    (start.elapsed().as_secs_f64(), events, invocations, sim_cycles)
}

fn measurement_json(wall_s: f64, events: u64, invocations: u64, sim_cycles: u64) -> String {
    // Microsecond resolution: the suite runs in single-digit milliseconds,
    // so coarser rounding would dominate the recorded speedups.
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"wall_s\": {wall_s:.6}, \"sim_events\": {events}, \"events_per_s\": {:.0}, \
         \"invocations\": {invocations}, \"sim_cycles\": {sim_cycles}, \
         \"sim_cycles_per_s\": {:.3e}}}",
        events as f64 / wall_s,
        sim_cycles as f64 / wall_s,
    );
    s
}

/// Extracts the value of a top-level `"baseline": {...}` key from a
/// previously written report (brace matching; no JSON library available
/// offline).
fn extract_baseline(json: &str) -> Option<String> {
    let key = "\"baseline\":";
    let at = json.find(key)? + key.len();
    let open = json[at..].find('{')? + at;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        // Correctness only: a reduced suite, run twice, must be
        // deterministic and complete. No timing assertions (CI machines
        // vary); the point is that the harness can never bit-rot.
        let params = GeneratorParams {
            phases: 1,
            ..GeneratorParams::quick()
        };
        let (_, e1, i1, c1) = run_suite(1, &params);
        let (_, e2, i2, c2) = run_suite(1, &params);
        if (e1, i1, c1) != (e2, i2, c2) {
            eprintln!("perf_baseline --smoke: nondeterministic suite: {e1}/{i1}/{c1} vs {e2}/{i2}/{c2}");
            return ExitCode::FAILURE;
        }
        if i1 == 0 || e1 == 0 {
            eprintln!("perf_baseline --smoke: suite ran no work (events={e1}, invocations={i1})");
            return ExitCode::FAILURE;
        }
        println!("perf_baseline --smoke: ok ({e1} events, {i1} invocations, {c1} simulated cycles)");
        if let Some(out) = &args.out_flag {
            // Smoke runs make no timing claims, so no wall-time fields.
            let body = format!(
                "{{\"sim_events\": {e1}, \"invocations\": {i1}, \"sim_cycles\": {c1}}}"
            );
            if let Err(e) = std::fs::write(out, format!("{{\"smoke\": {body}}}\n")) {
                eprintln!("perf_baseline --smoke: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let params = GeneratorParams::quick();
    println!(
        "perf_baseline: soc1 × quick generator × {:?}, {} train iteration(s), {} rep(s)",
        SUITE, TRAIN_ITERATIONS, args.reps
    );
    let mut best: Option<(f64, u64, u64, u64)> = None;
    for rep in 0..args.reps {
        let m = run_suite(TRAIN_ITERATIONS, &params);
        println!(
            "  rep {}: {:.3} s wall, {} events, {:.0} events/s",
            rep + 1,
            m.0,
            m.1,
            m.1 as f64 / m.0
        );
        if best.is_none_or(|b| m.0 < b.0) {
            best = Some(m);
        }
    }
    let (wall_s, events, invocations, sim_cycles) = best.expect("at least one rep");
    let current = measurement_json(wall_s, events, invocations, sim_cycles);

    let previous = std::fs::read_to_string(args.out()).ok();
    let baseline = previous
        .as_deref()
        .and_then(extract_baseline)
        .unwrap_or_else(|| current.clone());

    let report = format!(
        "{{\n  \"suite\": \"soc1 x quick x [fixed-non-coh-dma, manual, cohmeleon]\",\n  \
         \"baseline\": {baseline},\n  \"current\": {current}\n}}\n"
    );
    if let Err(e) = std::fs::write(args.out(), &report) {
        eprintln!("perf_baseline: cannot write {}: {e}", args.out());
        return ExitCode::FAILURE;
    }

    let baseline_wall = extract_field(&baseline, "wall_s");
    if let Some(b) = baseline_wall {
        println!(
            "perf_baseline: {wall_s:.3} s wall ({:.0} events/s); baseline {b:.3} s → speedup {:.2}x",
            events as f64 / wall_s,
            b / wall_s
        );
    }
    println!("perf_baseline: wrote {}", args.out());
    ExitCode::SUCCESS
}

/// Pulls a numeric field out of a flat JSON object.
fn extract_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = json.find(&key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
