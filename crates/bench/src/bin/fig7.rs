//! Regenerates fig7 of the paper's evaluation.

fn main() {
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::fig7::run(scale);
    cohmeleon_bench::figures::fig7::print(&data);
}
