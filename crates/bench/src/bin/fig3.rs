//! Regenerates Figure 3 (parallel accelerator execution).

fn main() {
    let scale = cohmeleon_bench::Scale::from_env();
    let data = cohmeleon_bench::figures::fig3::run(scale);
    cohmeleon_bench::figures::fig3::print(&data);
}
