//! Running the whole policy suite on one experiment, in parallel.

use cohmeleon_soc::{AppSpec, SocConfig};
use cohmeleon_workloads::runner::{run_protocol, summarize, PolicyOutcome};
use crossbeam::channel;

use crate::policies::{build_policy, PolicyKind};

/// Runs every policy in `kinds` through the train/test protocol
/// (training only affects learning policies) and returns outcomes
/// normalized against the first policy in `kinds` — by convention
/// [`PolicyKind::FixedNonCoh`], the paper's baseline.
///
/// Policies run on OS threads in parallel; each gets a fresh SoC, so runs
/// are independent and deterministic regardless of scheduling.
pub fn run_suite(
    config: &SocConfig,
    train_app: &AppSpec,
    test_app: &AppSpec,
    kinds: &[PolicyKind],
    train_iterations: usize,
    seed: u64,
) -> Vec<(PolicyKind, PolicyOutcome)> {
    let (tx, rx) = channel::unbounded();
    std::thread::scope(|scope| {
        for (slot, &kind) in kinds.iter().enumerate() {
            let tx = tx.clone();
            let config = config.clone();
            let train_app = train_app.clone();
            let test_app = test_app.clone();
            scope.spawn(move || {
                let mut policy = build_policy(kind, &config, train_iterations, seed);
                let result = run_protocol(
                    &config,
                    &train_app,
                    &test_app,
                    policy.as_mut(),
                    train_iterations,
                    seed,
                );
                tx.send((slot, kind, result)).expect("receiver alive");
            });
        }
    });
    drop(tx);
    let mut results: Vec<_> = rx.iter().collect();
    results.sort_by_key(|(slot, _, _)| *slot);

    let baseline = results
        .first()
        .map(|(_, _, r)| r.clone())
        .expect("at least one policy");
    results
        .into_iter()
        .map(|(_, kind, result)| (kind, summarize(result, &baseline)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohmeleon_soc::config::soc1;
    use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

    #[test]
    fn suite_runs_all_kinds_in_order() {
        let config = soc1();
        let app = generate_app(&config, &GeneratorParams::quick(), 1);
        let kinds = [
            PolicyKind::FixedNonCoh,
            PolicyKind::Manual,
            PolicyKind::Cohmeleon,
        ];
        let outcomes = run_suite(&config, &app, &app, &kinds, 1, 3);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].0, PolicyKind::FixedNonCoh);
        // Baseline normalizes to 1.
        assert!((outcomes[0].1.geo_time - 1.0).abs() < 1e-9);
        for (_, o) in &outcomes {
            assert!(o.geo_time > 0.0);
        }
    }

    #[test]
    fn suite_is_deterministic_despite_threading() {
        let config = soc1();
        let app = generate_app(&config, &GeneratorParams::quick(), 2);
        let kinds = [PolicyKind::FixedNonCoh, PolicyKind::Cohmeleon];
        let a = run_suite(&config, &app, &app, &kinds, 1, 5);
        let b = run_suite(&config, &app, &app, &kinds, 1, 5);
        for ((_, x), (_, y)) in a.iter().zip(&b) {
            assert_eq!(x.geo_time, y.geo_time);
            assert_eq!(x.geo_mem, y.geo_mem);
        }
    }
}
