//! Running the whole policy suite on one experiment.
//!
//! [`run_suite`] predates the experiment grid and survives as a thin
//! deprecated shim: build the equivalent one-scenario
//! [`Experiment`](cohmeleon_exp::Experiment) yourself for anything new —
//! it exposes the same per-cell semantics plus multi-scenario sweeps,
//! pluggable executors and streaming observers.

use cohmeleon_exp::{Experiment, WorkStealing};
use cohmeleon_soc::{AppSpec, SocConfig};
use cohmeleon_workloads::runner::PolicyOutcome;

use crate::policies::PolicyKind;

/// Runs every policy in `kinds` through the train/test protocol
/// (training only affects learning policies) and returns outcomes
/// normalized against the first policy in `kinds` — by convention
/// [`PolicyKind::FixedNonCoh`], the paper's baseline.
///
/// Policies run in parallel on the work-stealing executor; each grid cell
/// gets a fresh SoC and policy, so runs are independent and deterministic
/// regardless of scheduling.
///
/// # Panics
///
/// Panics if `kinds` is empty or lists the same kind twice (the grid
/// rejects ambiguous policy labels; the pre-grid implementation ran
/// duplicates redundantly).
#[deprecated(
    since = "0.1.0",
    note = "build a `cohmeleon_exp::Experiment` instead: \
            `Experiment::train_test(config, train, test).policy_kinds(kinds)\
            .seed(seed).train_iterations(n).build()?.collect(&executor)\
            .outcomes_against(0)`"
)]
pub fn run_suite(
    config: &SocConfig,
    train_app: &AppSpec,
    test_app: &AppSpec,
    kinds: &[PolicyKind],
    train_iterations: usize,
    seed: u64,
) -> Vec<(PolicyKind, PolicyOutcome)> {
    let grid = Experiment::train_test(config.clone(), train_app.clone(), test_app.clone())
        .policy_kinds(kinds.iter().copied())
        .seed(seed)
        .train_iterations(train_iterations)
        .build()
        .unwrap_or_else(|e| panic!("run_suite: invalid policy suite: {e}"));
    let results = grid.collect(&WorkStealing::new());
    results
        .into_outcomes_against(0)
        .into_iter()
        .map(|(cell, outcome)| (kinds[cell.policy], outcome))
        .collect()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use cohmeleon_soc::config::soc1;
    use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

    #[test]
    fn suite_runs_all_kinds_in_order() {
        let config = soc1();
        let app = generate_app(&config, &GeneratorParams::quick(), 1);
        let kinds = [
            PolicyKind::FixedNonCoh,
            PolicyKind::Manual,
            PolicyKind::Cohmeleon,
        ];
        let outcomes = run_suite(&config, &app, &app, &kinds, 1, 3);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].0, PolicyKind::FixedNonCoh);
        // Baseline normalizes to 1.
        assert!((outcomes[0].1.geo_time - 1.0).abs() < 1e-9);
        for (_, o) in &outcomes {
            assert!(o.geo_time > 0.0);
        }
    }

    #[test]
    fn suite_is_deterministic_despite_threading() {
        let config = soc1();
        let app = generate_app(&config, &GeneratorParams::quick(), 2);
        let kinds = [PolicyKind::FixedNonCoh, PolicyKind::Cohmeleon];
        let a = run_suite(&config, &app, &app, &kinds, 1, 5);
        let b = run_suite(&config, &app, &app, &kinds, 1, 5);
        for ((_, x), (_, y)) in a.iter().zip(&b) {
            assert_eq!(x.geo_time, y.geo_time);
            assert_eq!(x.geo_mem, y.geo_mem);
        }
    }

    /// The shim reproduces the pre-grid hand-rolled path bit for bit.
    #[test]
    fn suite_matches_direct_protocol_runs() {
        use cohmeleon_exp::build_policy;
        use cohmeleon_workloads::runner::run_protocol;

        let config = soc1();
        let train = generate_app(&config, &GeneratorParams::quick(), 1);
        let test = generate_app(&config, &GeneratorParams::quick(), 2);
        let kinds = [PolicyKind::FixedNonCoh, PolicyKind::Manual, PolicyKind::Cohmeleon];
        let outcomes = run_suite(&config, &train, &test, &kinds, 2, 9);
        for (kind, outcome) in &outcomes {
            let mut policy = build_policy(*kind, &config, 2, 9);
            let direct = run_protocol(&config, &train, &test, policy.as_mut(), 2, 9);
            assert_eq!(
                outcome.result.structural_hash(),
                direct.structural_hash(),
                "{kind:?}"
            );
        }
    }
}
