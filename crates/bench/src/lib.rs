//! # cohmeleon-bench
//!
//! The benchmark and figure-regeneration harness: one module per table and
//! figure of the paper's evaluation (see DESIGN.md's experiment index).
//!
//! Every figure module exposes `run(scale) -> Data` (structured results)
//! and `print(&Data)` (the same rows/series the paper reports), built on
//! the `cohmeleon-exp` experiment grid — a figure is one `Experiment`
//! (scenarios × policies × seeds) run on the work-stealing executor, so
//! regeneration parallelises across cells while staying bit-identical to
//! a serial run. The `src/bin/` binaries are thin wrappers; the criterion
//! benches under `benches/` time scaled-down versions of the same code
//! paths.
//!
//! Set `COHMELEON_FAST=1` to run every experiment in a reduced
//! configuration (smaller workloads, fewer training iterations) — useful
//! for smoke tests; the full configuration regenerates the paper's scales.

pub mod figures;
pub mod scale;
pub mod sweeps;
pub mod table;
pub mod tracked;

/// The policy suite now lives in `cohmeleon-exp` (the experiment grid
/// builds policies from [`PolicyKind`] values); re-exported here under its
/// old path.
pub use cohmeleon_exp::policies;

pub use policies::{policy_suite, PolicyKind};
pub use scale::Scale;
