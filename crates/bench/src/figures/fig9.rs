//! Figure 9: all eight policies across eight SoC configurations —
//! SoC0-Streaming, SoC0-Irregular, SoC1, SoC2, SoC3 (traffic generators)
//! and the case studies SoC4 (mixed accelerators), SoC5 (autonomous
//! driving), SoC6 (computer vision). Also computes the paper's headline
//! numbers: Cohmeleon's average speedup and off-chip-access reduction
//! against the five fixed policies.

use cohmeleon_exp::{Experiment, PolicyKind, Scenario, WorkStealing};
use cohmeleon_sim::stats::geometric_mean;
use cohmeleon_soc::config::{soc0_irregular, soc0_streaming, soc1, soc2, soc3, soc4, soc5, soc6};
use cohmeleon_soc::{AppSpec, SocConfig};
use cohmeleon_workloads::case_studies::{soc4_app, soc5_app, soc6_app};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::scale::Scale;
use crate::table;

/// One scatter point: a policy on a SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// SoC panel name.
    pub soc: String,
    /// Policy name.
    pub policy: String,
    /// Geometric-mean normalized execution time.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses.
    pub norm_mem: f64,
}

/// The regenerated figure plus headline summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// All points, SoC-major in policy order.
    pub points: Vec<Point>,
    /// Mean speedup of Cohmeleon vs. the five fixed policies
    /// (paper: ≈ 1.38×).
    pub headline_speedup: f64,
    /// Mean reduction of off-chip accesses vs. the five fixed policies
    /// (paper: ≈ 66%).
    pub headline_mem_reduction: f64,
}

impl Data {
    /// Points for one SoC.
    pub fn soc(&self, name: &str) -> Vec<&Point> {
        self.points.iter().filter(|p| p.soc == name).collect()
    }

    /// Distinct SoC names in order.
    pub fn socs(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.soc) {
                out.push(p.soc.clone());
            }
        }
        out
    }
}

/// The eight experiment configurations: `(config, train app, test app)`.
fn experiments(scale: Scale) -> Vec<(SocConfig, AppSpec, AppSpec)> {
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let mut out = Vec::new();
    for (i, config) in [soc0_streaming(), soc0_irregular(), soc1(), soc2(), soc3()]
        .into_iter()
        .enumerate()
    {
        let train = generate_app(&config, &gen_params, 5000 + i as u64 * 2);
        let test = generate_app(&config, &gen_params, 5001 + i as u64 * 2);
        out.push((config, train, test));
    }
    // Case-study SoCs: per the paper, training always runs a randomly
    // configured instance of the evaluation application on the target SoC;
    // the domain application is the test workload.
    let c4 = soc4();
    out.push((
        c4.clone(),
        generate_app(&c4, &gen_params, 5100),
        soc4_app(&c4, 2),
    ));
    let c5 = soc5();
    out.push((
        c5.clone(),
        generate_app(&c5, &gen_params, 5101),
        soc5_app(&c5, 2),
    ));
    let c6 = soc6();
    out.push((
        c6.clone(),
        generate_app(&c6, &gen_params, 5102),
        soc6_app(&c6, 2),
    ));
    out
}

/// Runs the cross-SoC experiment as one 8 × 8 grid: every (SoC, policy)
/// cell is independent, so the work-stealing executor balances the whole
/// figure instead of one suite per SoC. Scenario `i` keeps its historical
/// seed `7 + i` via a per-scenario seed offset.
pub fn run(scale: Scale) -> Data {
    let train_iterations = scale.pick(20, 2);
    let exps = experiments(scale);

    let scenarios = exps
        .into_iter()
        .enumerate()
        .map(|(i, (config, train_app, test_app))| {
            Scenario::new(config, train_app, test_app).seed_offset(i as u64)
        });
    let grid = Experiment::new()
        .scenarios(scenarios)
        .policy_kinds(PolicyKind::ALL)
        .seed(7)
        .train_iterations(train_iterations)
        .build()
        .expect("fig9 grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    let points: Vec<Point> = results
        .into_outcomes_against(0)
        .into_iter()
        .map(|(cell, o)| Point {
            soc: grid.scenarios()[cell.scenario].label.clone(),
            policy: o.policy.clone(),
            norm_time: o.geo_time,
            norm_mem: o.geo_mem,
        })
        .collect();

    let (headline_speedup, headline_mem_reduction) = headline(&points);
    Data {
        points,
        headline_speedup,
        headline_mem_reduction,
    }
}

/// Computes the headline averages: for every SoC and every fixed policy,
/// Cohmeleon's speedup (`fixed_time / cohmeleon_time`) and access reduction
/// (`1 − cohmeleon_mem / fixed_mem`), averaged geometrically (speedup) and
/// arithmetically (reduction) as ratios-of-means are reported in the paper.
fn headline(points: &[Point]) -> (f64, f64) {
    let fixed_names = [
        "fixed-non-coh-dma",
        "fixed-llc-coh-dma",
        "fixed-coh-dma",
        "fixed-full-coh",
        "fixed-hetero",
    ];
    let mut speedups = Vec::new();
    let mut reductions = Vec::new();
    let socs: Vec<String> = {
        let mut out = Vec::new();
        for p in points {
            if !out.contains(&p.soc) {
                out.push(p.soc.clone());
            }
        }
        out
    };
    for soc in &socs {
        let coh = points
            .iter()
            .find(|p| &p.soc == soc && p.policy == "cohmeleon")
            .expect("cohmeleon point per SoC");
        for fixed in fixed_names {
            if let Some(f) = points.iter().find(|p| &p.soc == soc && p.policy == fixed) {
                speedups.push(f.norm_time / coh.norm_time.max(1e-12));
                if f.norm_mem > 1e-12 {
                    reductions.push(1.0 - (coh.norm_mem / f.norm_mem).min(1.0));
                }
            }
        }
    }
    let speedup = geometric_mean(speedups.iter().copied()).unwrap_or(1.0);
    let reduction = if reductions.is_empty() {
        0.0
    } else {
        reductions.iter().sum::<f64>() / reductions.len() as f64
    };
    (speedup, reduction)
}

/// Prints the scatter and headline.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.soc.clone(),
                p.policy.clone(),
                table::ratio(p.norm_time),
                table::ratio(p.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["soc", "policy", "norm-time", "norm-mem"], &rows)
    );
    for soc in data.socs() {
        let pts = data.soc(&soc);
        let best = pts
            .iter()
            .min_by(|a, b| a.norm_time.partial_cmp(&b.norm_time).expect("finite"))
            .expect("non-empty");
        let coh = pts
            .iter()
            .find(|p| p.policy == "cohmeleon")
            .expect("cohmeleon present");
        println!(
            "{soc}: best={} ({}); cohmeleon {} time / {} mem",
            best.policy,
            table::ratio(best.norm_time),
            table::ratio(coh.norm_time),
            table::ratio(coh.norm_mem)
        );
    }
    println!(
        "HEADLINE: cohmeleon vs fixed policies — speedup {:.2}x (paper ≈ 1.38x), off-chip reduction {} (paper ≈ 66%)",
        data.headline_speedup,
        table::percent(data.headline_mem_reduction)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "several minutes even at fast scale; run explicitly"]
    fn fast_run_covers_eight_socs() {
        let data = run(Scale::Fast);
        assert_eq!(data.socs().len(), 8);
        assert_eq!(data.points.len(), 64);
        assert!(data.headline_speedup > 0.5);
    }
}
