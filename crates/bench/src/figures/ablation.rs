//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! 1. **Coherent-DMA support** — the paper extended ESP's protocol with
//!    coherent DMA ("we extended the protocol to support coherent-DMA by
//!    issuing recalls from the LLC"). How much does Cohmeleon lose on an
//!    unmodified ESP that offers only the other three modes?
//! 2. **Attribution accuracy** — the paper approximates per-accelerator
//!    off-chip accesses proportionally to footprint to stay
//!    accelerator-agnostic. Does an oracle (exact per-invocation counts,
//!    available only in simulation) learn a better policy?
//! 3. **Exploration** — ε₀ = 0.5 versus purely greedy training (ε₀ = 0).

use cohmeleon_core::policy::{CohmeleonPolicy, Policy, RestrictedPolicy};
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::RewardWeights;
use cohmeleon_core::{CoherenceMode, ModeSet};
use cohmeleon_soc::config::soc0;
use cohmeleon_soc::{run_app_with_options, Attribution, EngineOptions, Soc};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::runner::summarize;

use crate::scale::Scale;
use crate::table;

/// One ablation arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Arm label.
    pub label: String,
    /// Geometric-mean normalized execution time vs. the full system.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses vs. the full system.
    pub norm_mem: f64,
}

/// The ablation results (first arm is the full system ≡ 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// All arms.
    pub arms: Vec<Arm>,
}

fn train_and_test(
    config: &cohmeleon_soc::SocConfig,
    train_app: &cohmeleon_soc::AppSpec,
    test_app: &cohmeleon_soc::AppSpec,
    policy: &mut dyn Policy,
    iterations: usize,
    options: EngineOptions,
    seed: u64,
) -> cohmeleon_soc::AppResult {
    for i in 0..iterations {
        policy.begin_iteration(i);
        let mut soc = Soc::new(config.clone());
        run_app_with_options(
            &mut soc,
            train_app,
            policy,
            seed.wrapping_add(i as u64 * 7919),
            options,
        );
    }
    policy.freeze();
    let mut soc = Soc::new(config.clone());
    run_app_with_options(&mut soc, test_app, policy, seed ^ 0x5eed_7e57, options)
}

/// Runs the three ablations on SoC0.
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let iterations = scale.pick(20, 2);
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 6001);
    let test_app = generate_app(&config, &gen_params, 6002);
    let weights = RewardWeights::paper_default();
    let seed = 7;

    let baseline = {
        let mut policy =
            CohmeleonPolicy::new(weights, LearningSchedule::paper_default(iterations), seed);
        train_and_test(
            &config,
            &train_app,
            &test_app,
            &mut policy,
            iterations,
            EngineOptions::default(),
            seed,
        )
    };

    let mut arms = vec![Arm {
        label: "full system (4 modes, approx attribution, ε₀=0.5)".into(),
        norm_time: 1.0,
        norm_mem: 1.0,
    }];

    // 1. No coherent-DMA hardware (unmodified ESP).
    {
        let inner =
            CohmeleonPolicy::new(weights, LearningSchedule::paper_default(iterations), seed);
        let mut policy =
            RestrictedPolicy::new(inner, ModeSet::all().without(CoherenceMode::CohDma));
        let result = train_and_test(
            &config,
            &train_app,
            &test_app,
            &mut policy,
            iterations,
            EngineOptions::default(),
            seed,
        );
        let o = summarize(result, &baseline);
        arms.push(Arm {
            label: "no coherent-DMA support".into(),
            norm_time: o.geo_time,
            norm_mem: o.geo_mem,
        });
    }

    // 2. Oracle attribution.
    {
        let mut policy =
            CohmeleonPolicy::new(weights, LearningSchedule::paper_default(iterations), seed);
        let result = train_and_test(
            &config,
            &train_app,
            &test_app,
            &mut policy,
            iterations,
            EngineOptions {
                attribution: Attribution::GroundTruth,
            },
            seed,
        );
        let o = summarize(result, &baseline);
        arms.push(Arm {
            label: "oracle off-chip attribution".into(),
            norm_time: o.geo_time,
            norm_mem: o.geo_mem,
        });
    }

    // 3. Greedy training (no exploration).
    {
        let mut policy = CohmeleonPolicy::new(
            weights,
            LearningSchedule {
                epsilon0: 0.0,
                alpha0: 0.25,
                train_iterations: iterations,
            },
            seed,
        );
        let result = train_and_test(
            &config,
            &train_app,
            &test_app,
            &mut policy,
            iterations,
            EngineOptions::default(),
            seed,
        );
        let o = summarize(result, &baseline);
        arms.push(Arm {
            label: "greedy training (ε₀=0)".into(),
            norm_time: o.geo_time,
            norm_mem: o.geo_mem,
        });
    }

    Data { arms }
}

/// Prints the ablation table.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .arms
        .iter()
        .map(|a| {
            vec![
                a.label.clone(),
                table::ratio(a.norm_time),
                table::ratio(a.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["configuration", "norm-time", "norm-mem"], &rows)
    );
    println!("(normalized to the full system; >1.00 means the ablated system is worse)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ablation_produces_all_arms() {
        let data = run(Scale::Fast);
        assert_eq!(data.arms.len(), 4);
        assert_eq!(data.arms[0].norm_time, 1.0);
        for arm in &data.arms {
            assert!(arm.norm_time > 0.0);
            assert!(arm.norm_mem >= 0.0);
        }
    }
}
