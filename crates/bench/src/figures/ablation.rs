//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! 1. **Coherent-DMA support** — the paper extended ESP's protocol with
//!    coherent DMA ("we extended the protocol to support coherent-DMA by
//!    issuing recalls from the LLC"). How much does Cohmeleon lose on an
//!    unmodified ESP that offers only the other three modes?
//! 2. **Attribution accuracy** — the paper approximates per-accelerator
//!    off-chip accesses proportionally to footprint to stay
//!    accelerator-agnostic. Does an oracle (exact per-invocation counts,
//!    available only in simulation) learn a better policy?
//! 3. **Exploration** — ε₀ = 0.5 versus purely greedy training (ε₀ = 0).

use cohmeleon_core::policy::{CohmeleonPolicy, RestrictedPolicy};
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::RewardWeights;
use cohmeleon_core::{CoherenceMode, ModeSet};
use cohmeleon_exp::{Experiment, PolicySpec, WorkStealing};
use cohmeleon_soc::config::soc0;
use cohmeleon_soc::{Attribution, EngineOptions};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::scale::Scale;
use crate::table;

/// One ablation arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Arm label.
    pub label: String,
    /// Geometric-mean normalized execution time vs. the full system.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses vs. the full system.
    pub norm_mem: f64,
}

/// The ablation results (first arm is the full system ≡ 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// All arms.
    pub arms: Vec<Arm>,
}

/// Runs the three ablations on SoC0: one grid of four custom policy arms
/// (the full system plus three ablated variants), normalized against the
/// full-system cell. The oracle arm overrides the engine's attribution
/// mode through its [`PolicySpec`] — every arm otherwise runs the exact
/// train/test protocol of the grid.
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let iterations = scale.pick(20, 2);
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 6001);
    let test_app = generate_app(&config, &gen_params, 6002);
    let weights = RewardWeights::paper_default();

    fn full_system(
        _: &cohmeleon_soc::SocConfig,
        iters: usize,
        seed: u64,
    ) -> Box<dyn cohmeleon_core::Policy> {
        Box::new(CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(iters),
            seed,
        ))
    }
    let grid = Experiment::train_test(config, train_app, test_app)
        .policy(PolicySpec::custom(
            "full system (4 modes, approx attribution, ε₀=0.5)",
            full_system,
        ))
        .policy(PolicySpec::custom(
            "no coherent-DMA support",
            move |_, iters, seed| {
                let inner =
                    CohmeleonPolicy::new(weights, LearningSchedule::paper_default(iters), seed);
                Box::new(RestrictedPolicy::new(
                    inner,
                    ModeSet::all().without(CoherenceMode::CohDma),
                ))
            },
        ))
        .policy(
            PolicySpec::custom("oracle off-chip attribution", full_system).with_options(
                EngineOptions {
                    attribution: Attribution::GroundTruth,
                    ..EngineOptions::default()
                },
            ),
        )
        .policy(PolicySpec::custom(
            "greedy training (ε₀=0)",
            move |_, iters, seed| {
                Box::new(CohmeleonPolicy::new(
                    weights,
                    LearningSchedule {
                        epsilon0: 0.0,
                        alpha0: 0.25,
                        train_iterations: iters,
                    },
                    seed,
                ))
            },
        ))
        .seed(7)
        .train_iterations(iterations)
        .build()
        .expect("ablation grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    let arms = results
        .into_outcomes_against(0)
        .into_iter()
        .map(|(cell, o)| {
            if cell.policy == 0 {
                // The full system is the normalization baseline by
                // definition.
                Arm {
                    label: grid.policies()[0].policy_label().to_owned(),
                    norm_time: 1.0,
                    norm_mem: 1.0,
                }
            } else {
                Arm {
                    label: grid.policies()[cell.policy].policy_label().to_owned(),
                    norm_time: o.geo_time,
                    norm_mem: o.geo_mem,
                }
            }
        })
        .collect();
    Data { arms }
}

/// Prints the ablation table.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .arms
        .iter()
        .map(|a| {
            vec![
                a.label.clone(),
                table::ratio(a.norm_time),
                table::ratio(a.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["configuration", "norm-time", "norm-mem"], &rows)
    );
    println!("(normalized to the full system; >1.00 means the ablated system is worse)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ablation_produces_all_arms() {
        let data = run(Scale::Fast);
        assert_eq!(data.arms.len(), 4);
        assert_eq!(data.arms[0].norm_time, 1.0);
        for arm in &data.arms {
            assert!(arm.norm_time > 0.0);
            assert!(arm.norm_mem >= 0.0);
        }
    }
}
