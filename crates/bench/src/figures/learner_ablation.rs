//! Learner-ablation sweep: the agent design space through the grid.
//!
//! The agent redesign decomposed the learning subsystem into pluggable
//! state spaces, exploration strategies, value stores and update rules;
//! this harness sweeps the Cartesian product (3 spaces × 3 strategies ×
//! 2 update rules, over a sparse store so the extended space stays cheap)
//! as one [`SweepGrid`] axis and reports every cell normalized against
//! the paper's composition — which ablation choices Cohmeleon's results
//! actually depend on.

use cohmeleon_exp::{
    CellRecord, Experiment, ExplorationKind, JsonlSink, LearnerSpec, StateSpaceKind, StoreKind,
    UpdateKind, WorkStealing,
};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::scale::Scale;
use crate::table;

/// One learner cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// The learner configuration.
    pub spec: LearnerSpec,
    /// Its policy label (`"cohmeleon"` for the paper cell).
    pub label: String,
    /// Geometric-mean normalized execution time vs. the paper agent.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses vs. the paper agent.
    pub norm_mem: f64,
}

/// The sweep results plus the per-cell records the JSONL artifact holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// One arm per learner spec, in grid order (the paper cell first).
    pub arms: Vec<Arm>,
    /// The flat per-cell records (what [`write_jsonl`] persists).
    pub records: Vec<CellRecord>,
}

/// The swept axes: every state space, every exploration strategy, both
/// update rules — 18 compositions over the sparse store, with the paper's
/// composition re-labelled to the dense paper default so the baseline
/// cell *is* `cohmeleon`.
pub fn specs() -> Vec<LearnerSpec> {
    let mut specs = LearnerSpec::grid(
        &StateSpaceKind::ALL,
        &ExplorationKind::ALL,
        &UpdateKind::ALL,
        StoreKind::Sparse,
    );
    // Put the paper composition first (it is the normalization baseline)
    // and give it the paper's dense store so the baseline cell is exactly
    // `CohmeleonPolicy`.
    let paper_sparse = LearnerSpec {
        store: StoreKind::Sparse,
        ..LearnerSpec::paper()
    };
    specs.retain(|s| *s != paper_sparse);
    specs.insert(0, LearnerSpec::paper());
    specs
}

/// Runs the sweep: one scenario (SoC1 train/test), 18 learner cells, one
/// seed, normalized against the paper agent (cell 0).
pub fn run(scale: Scale) -> Data {
    let config = soc1();
    let iterations = scale.pick(10, 2);
    let gen_params = scale.pick(GeneratorParams::coverage(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 7001);
    let test_app = generate_app(&config, &gen_params, 7002);
    let specs = specs();

    let grid = Experiment::train_test(config, train_app, test_app)
        .learners(specs.iter().copied())
        .seed(11)
        .train_iterations(iterations)
        .build()
        .expect("learner ablation axes are non-empty");
    let results = grid.collect(&WorkStealing::new());
    let records: Vec<CellRecord> = results.iter().map(CellRecord::from_cell).collect();

    let arms = results
        .into_outcomes_against(0)
        .into_iter()
        .map(|(cell, o)| Arm {
            spec: specs[cell.policy],
            label: grid.policies()[cell.policy].policy_label().to_owned(),
            norm_time: if cell.policy == 0 { 1.0 } else { o.geo_time },
            norm_mem: if cell.policy == 0 { 1.0 } else { o.geo_mem },
        })
        .collect();
    Data { arms, records }
}

/// Writes the per-cell records as JSONL (the CI artifact).
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_jsonl(data: &Data, path: &str) -> std::io::Result<()> {
    let mut sink = JsonlSink::create(path)?;
    for record in &data.records {
        sink.write_record(record);
    }
    sink.into_inner();
    Ok(())
}

/// Prints the ablation table, one row per learner composition.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .arms
        .iter()
        .map(|a| {
            vec![
                a.spec.to_string(),
                a.label.clone(),
                table::ratio(a.norm_time),
                table::ratio(a.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["learner (space/explore/store/update)", "label", "norm-time", "norm-mem"], &rows)
    );
    println!("(normalized to the paper composition; >1.00 means that composition is worse)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_design_space() {
        let specs = specs();
        assert_eq!(specs.len(), 18);
        assert_eq!(specs[0], LearnerSpec::paper());
        let spaces: std::collections::HashSet<_> =
            specs.iter().map(|s| s.state_space).collect();
        let explorations: std::collections::HashSet<_> =
            specs.iter().map(|s| s.exploration).collect();
        let updates: std::collections::HashSet<_> = specs.iter().map(|s| s.update).collect();
        assert_eq!(spaces.len(), 3);
        assert_eq!(explorations.len(), 3);
        assert_eq!(updates.len(), 2);
    }

    #[test]
    fn fast_sweep_runs_all_cells_deterministically() {
        let a = run(Scale::Fast);
        assert_eq!(a.arms.len(), 18);
        assert_eq!(a.records.len(), 18);
        assert_eq!(a.arms[0].label, "cohmeleon");
        assert_eq!(a.arms[0].norm_time, 1.0);
        for arm in &a.arms {
            assert!(arm.norm_time > 0.0, "{}", arm.label);
            assert!(arm.norm_mem >= 0.0, "{}", arm.label);
        }
        // Bit-identical re-run: the whole sweep is a pure function of its
        // seeds.
        let b = run(Scale::Fast);
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_records_round_trip() {
        let data = run(Scale::Fast);
        let text: String = data
            .records
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let parsed = cohmeleon_exp::read_jsonl(&text).unwrap();
        assert_eq!(parsed, data.records);
    }
}
