//! Learner-ablation sweep: the agent design space through the grid.
//!
//! The agent redesign decomposed the learning subsystem into pluggable
//! state spaces, exploration strategies, value stores and update rules;
//! this harness sweeps the Cartesian product (3 spaces × 3 strategies ×
//! 2 update rules, over a sparse store so the extended space stays cheap)
//! as one [`SweepGrid`](cohmeleon_exp::SweepGrid) axis and reports every
//! cell normalized against
//! the paper's composition — which ablation choices Cohmeleon's results
//! actually depend on.

use std::collections::HashMap;

use cohmeleon_exp::{
    CellRecord, Experiment, ExplorationKind, JsonlSink, LearnerSpec, StateSpaceKind, StoreKind,
    UpdateKind, WorkStealing,
};
use cohmeleon_sim::stats::geometric_mean;
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::scale::Scale;
use crate::table;

/// One learner cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// The learner configuration.
    pub spec: LearnerSpec,
    /// Its policy label (`"cohmeleon"` for the paper cell).
    pub label: String,
    /// Geometric-mean normalized execution time vs. the paper agent.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses vs. the paper agent.
    pub norm_mem: f64,
}

/// The sweep results plus the per-cell records the JSONL artifact holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// One arm per learner spec, in grid order (the paper cell first).
    pub arms: Vec<Arm>,
    /// The flat per-cell records (what [`write_jsonl`] persists).
    pub records: Vec<CellRecord>,
}

/// The swept axes: every state space, every exploration strategy, both
/// update rules — 18 compositions over the sparse store, with the paper's
/// composition re-labelled to the dense paper default so the baseline
/// cell *is* `cohmeleon`.
pub fn specs() -> Vec<LearnerSpec> {
    let mut specs = LearnerSpec::grid(
        &StateSpaceKind::ALL,
        &ExplorationKind::ALL,
        &UpdateKind::ALL,
        StoreKind::Sparse,
    );
    // Put the paper composition first (it is the normalization baseline)
    // and give it the paper's dense store so the baseline cell is exactly
    // `CohmeleonPolicy`.
    let paper_sparse = LearnerSpec {
        store: StoreKind::Sparse,
        ..LearnerSpec::paper()
    };
    specs.retain(|s| *s != paper_sparse);
    specs.insert(0, LearnerSpec::paper());
    specs
}

/// The sweep as an [`Experiment`] builder: one scenario (SoC1
/// train/test), the 18 learner cells of [`specs`], one seed, with the
/// harness's conventional checkpoint path (`learner_ablation.jsonl`)
/// pre-set so `--resume` runs pick up where a killed sweep stopped. The
/// binary may override the path or add shards before building.
pub fn experiment(scale: Scale) -> Experiment {
    let config = soc1();
    let iterations = scale.pick(10, 2);
    let gen_params = scale.pick(GeneratorParams::coverage(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 7001);
    let test_app = generate_app(&config, &gen_params, 7002);
    Experiment::train_test(config, train_app, test_app)
        .learners(specs().iter().copied())
        .seed(11)
        .train_iterations(iterations)
        .resume_from("learner_ablation.jsonl")
}

/// Runs the sweep in-process and normalizes every cell against the paper
/// agent (cell 0).
pub fn run(scale: Scale) -> Data {
    let grid = experiment(scale)
        .build()
        .expect("learner ablation axes are non-empty");
    let results = grid.collect(&WorkStealing::new());
    let records: Vec<CellRecord> = results.iter().map(CellRecord::from_cell).collect();
    data_from_records(records)
}

/// Rebuilds the ablation table from persisted cell records — what the
/// `--resume` and `--shards` paths (and any post-hoc figure regeneration
/// from a JSONL artifact) use instead of re-simulating. The per-phase
/// normalization is numerically identical to
/// [`summarize`](cohmeleon_workloads::runner::summarize) on the live
/// results: both divide the same integer totals in the same order.
pub fn data_from_records(records: Vec<CellRecord>) -> Data {
    let specs = specs();
    let baselines: HashMap<(usize, usize), &CellRecord> = records
        .iter()
        .filter(|r| r.policy_index == 0)
        .map(|r| ((r.scenario_index, r.seed_index), r))
        .collect();
    let arms = records
        .iter()
        .map(|r| {
            let (norm_time, norm_mem) = if r.policy_index == 0 {
                (1.0, 1.0)
            } else {
                let base = baselines
                    .get(&(r.scenario_index, r.seed_index))
                    .expect("baseline (policy 0) record present for every scenario/seed");
                let ratios: Vec<(f64, f64)> = r
                    .phases
                    .iter()
                    .zip(&base.phases)
                    .map(|(p, b)| {
                        (
                            p.1 as f64 / b.1.max(1) as f64,
                            p.2 as f64 / b.2.max(1) as f64,
                        )
                    })
                    .collect();
                (
                    geometric_mean(ratios.iter().map(|r| r.0)).unwrap_or(1.0),
                    geometric_mean(ratios.iter().map(|r| r.1)).unwrap_or(1.0),
                )
            };
            Arm {
                spec: specs[r.policy_index],
                label: r.policy.clone(),
                norm_time,
                norm_mem,
            }
        })
        .collect();
    Data { arms, records }
}

/// Writes the per-cell records as JSONL (the CI artifact).
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_jsonl(data: &Data, path: &str) -> std::io::Result<()> {
    let mut sink = JsonlSink::create(path)?;
    for record in &data.records {
        sink.write_record(record);
    }
    sink.into_inner();
    Ok(())
}

/// Prints the ablation table, one row per learner composition.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .arms
        .iter()
        .map(|a| {
            vec![
                a.spec.to_string(),
                a.label.clone(),
                table::ratio(a.norm_time),
                table::ratio(a.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["learner (space/explore/store/update)", "label", "norm-time", "norm-mem"], &rows)
    );
    println!("(normalized to the paper composition; >1.00 means that composition is worse)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_design_space() {
        let specs = specs();
        assert_eq!(specs.len(), 18);
        assert_eq!(specs[0], LearnerSpec::paper());
        let spaces: std::collections::HashSet<_> =
            specs.iter().map(|s| s.state_space).collect();
        let explorations: std::collections::HashSet<_> =
            specs.iter().map(|s| s.exploration).collect();
        let updates: std::collections::HashSet<_> = specs.iter().map(|s| s.update).collect();
        assert_eq!(spaces.len(), 3);
        assert_eq!(explorations.len(), 3);
        assert_eq!(updates.len(), 2);
    }

    #[test]
    fn fast_sweep_runs_all_cells_deterministically() {
        let a = run(Scale::Fast);
        assert_eq!(a.arms.len(), 18);
        assert_eq!(a.records.len(), 18);
        assert_eq!(a.arms[0].label, "cohmeleon");
        assert_eq!(a.arms[0].norm_time, 1.0);
        for arm in &a.arms {
            assert!(arm.norm_time > 0.0, "{}", arm.label);
            assert!(arm.norm_mem >= 0.0, "{}", arm.label);
        }
        // Bit-identical re-run: the whole sweep is a pure function of its
        // seeds.
        let b = run(Scale::Fast);
        assert_eq!(a, b);
    }

    #[test]
    fn records_rebuild_exactly_the_live_outcomes() {
        // The record-based normalization must be bit-identical to the
        // live `summarize` path, or figures regenerated from a JSONL
        // artifact would drift from figures computed in-process.
        let grid = experiment(Scale::Fast).build().unwrap();
        let results = grid.collect(&cohmeleon_exp::Serial);
        let records: Vec<CellRecord> = results.iter().map(CellRecord::from_cell).collect();
        let live: Vec<(f64, f64)> = results
            .into_outcomes_against(0)
            .into_iter()
            .map(|(cell, o)| {
                if cell.policy == 0 {
                    (1.0, 1.0)
                } else {
                    (o.geo_time, o.geo_mem)
                }
            })
            .collect();
        let rebuilt = data_from_records(records);
        assert_eq!(rebuilt.arms.len(), live.len());
        for (arm, (geo_time, geo_mem)) in rebuilt.arms.iter().zip(&live) {
            assert_eq!(arm.norm_time, *geo_time, "{}", arm.label);
            assert_eq!(arm.norm_mem, *geo_mem, "{}", arm.label);
        }
    }

    #[test]
    fn jsonl_records_round_trip() {
        let data = run(Scale::Fast);
        let text: String = data
            .records
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let parsed = cohmeleon_exp::read_jsonl(&text).unwrap();
        assert_eq!(parsed, data.records);
    }
}
