//! One module per table/figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — coherence modes in the literature |
//! | [`table2`] | Table 2 — accelerators vs. benchmark suites |
//! | [`table4`] | Table 4 — parameters of the evaluation SoCs |
//! | [`fig2`] | Figure 2 — accelerators in isolation |
//! | [`fig3`] | Figure 3 — parallel accelerator execution |
//! | [`fig5`] | Figure 5 — four phases on SoC0, eight policies |
//! | [`fig6`] | Figure 6 — reward-function design-space exploration |
//! | [`fig7`] | Figure 7 — breakdown of coherence decisions |
//! | [`fig8`] | Figure 8 — performance over training iterations |
//! | [`fig9`] | Figure 9 — eight SoC configurations, eight policies |
//! | [`overhead`] | Section 6 — Cohmeleon's runtime overhead |
//!
//! Beyond the paper: [`ablation`] (design-choice ablations),
//! [`learner_ablation`] (the agent design space — state spaces ×
//! exploration strategies × update rules through the sweep grid) and
//! [`weight_sensitivity`] (Figure-6-style reward-weight exploration as
//! learner-grid cells, crossed with the agent scope).

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod learner_ablation;
pub mod overhead;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod weight_sensitivity;
