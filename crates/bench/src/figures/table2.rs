//! Table 2: the accelerators of this work vs. benchmark suites.

use cohmeleon_accel::catalog;
use cohmeleon_accel::table2::TABLE2;

use crate::table;

/// Prints Table 2 from the data in `cohmeleon-accel`.
pub fn print() {
    let names: Vec<String> = catalog()
        .into_iter()
        .map(|s| s.profile.name)
        .collect();
    let header: Vec<&str> = std::iter::once("suite")
        .chain(names.iter().map(|n| n.as_str()))
        .collect();
    let rows: Vec<Vec<String>> = TABLE2
        .iter()
        .map(|row| {
            let mut cells = vec![row.suite.to_owned()];
            for i in 0..names.len() {
                cells.push(if row.covers(i) { "✓" } else { "" }.to_owned());
            }
            cells
        })
        .collect();
    println!("{}", table::render(&header, &rows));
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_does_not_panic() {
        super::print();
    }
}
