//! Table 4: parameters of the evaluation SoCs.

use cohmeleon_soc::config::table4;

use crate::table;

/// Prints Table 4 from the configurations in `cohmeleon-soc`.
pub fn print() {
    let socs = table4();
    let header: Vec<String> = std::iter::once("parameter".to_owned())
        .chain(socs.iter().map(|s| s.name.clone()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push_row = |name: &str, values: Vec<String>| {
        let mut row = vec![name.to_owned()];
        row.extend(values);
        rows.push(row);
    };
    push_row(
        "Accelerators",
        socs.iter().map(|s| s.accels.len().to_string()).collect(),
    );
    push_row(
        "NoC size",
        socs.iter()
            .map(|s| format!("{}x{}", s.noc_width, s.noc_height))
            .collect(),
    );
    push_row("CPUs", socs.iter().map(|s| s.cpus.to_string()).collect());
    push_row(
        "DDRs",
        socs.iter().map(|s| s.mem_tiles.to_string()).collect(),
    );
    push_row(
        "LLC part.",
        socs.iter()
            .map(|s| format!("{}kB", s.llc_slice_bytes / 1024))
            .collect(),
    );
    push_row(
        "Total LLC",
        socs.iter()
            .map(|s| {
                let kb = s.llc_total_bytes() / 1024;
                if kb >= 1024 {
                    format!("{}MB", kb / 1024)
                } else {
                    format!("{kb}kB")
                }
            })
            .collect(),
    );
    push_row(
        "L2 cache",
        socs.iter()
            .map(|s| format!("{}kB", s.l2_bytes / 1024))
            .collect(),
    );
    println!("{}", table::render(&header_refs, &rows));
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_does_not_panic() {
        super::print();
    }
}
