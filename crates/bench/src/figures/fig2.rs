//! Figure 2: each accelerator running in isolation under every coherence
//! mode, for Small (16 KiB), Medium (256 KiB) and Large (4 MiB) workloads.
//! As in the paper, each bar averages ten executions (repeated invocations
//! on the same dataset, so caches stay warm across executions). Bars are
//! execution time and off-chip memory accesses, normalized to non-coherent
//! DMA for the same accelerator and size.

use cohmeleon_core::{AccelInstanceId, CoherenceMode};
use cohmeleon_exp::{Experiment, PolicyKind, Protocol, Scenario, WorkStealing};
use cohmeleon_soc::config::motivation_isolation_soc;
use cohmeleon_soc::{AppSpec, PhaseSpec, ThreadSpec};

use crate::scale::Scale;
use crate::table;

/// One bar pair of Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Accelerator name (figure row).
    pub accel: String,
    /// Workload size label (figure column).
    pub size: &'static str,
    /// Coherence mode (bar position).
    pub mode: CoherenceMode,
    /// Measured execution time in cycles (driver + flush included).
    pub exec_cycles: u64,
    /// Measured off-chip accesses (monitor-attributed).
    pub offchip: f64,
    /// Execution time normalized to non-coherent DMA.
    pub norm_time: f64,
    /// Off-chip accesses normalized to non-coherent DMA.
    pub norm_mem: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// All bars, grouped by (accelerator, size) in mode order.
    pub entries: Vec<Entry>,
}

impl Data {
    /// The entry for a given (accelerator, size, mode).
    pub fn get(&self, accel: &str, size: &str, mode: CoherenceMode) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.accel == accel && e.size == size && e.mode == mode)
    }

    /// The best (lowest normalized time) mode for an (accelerator, size).
    pub fn winner(&self, accel: &str, size: &str) -> Option<CoherenceMode> {
        self.entries
            .iter()
            .filter(|e| e.accel == accel && e.size == size)
            .min_by(|a, b| a.norm_time.partial_cmp(&b.norm_time).expect("finite"))
            .map(|e| e.mode)
    }
}

/// The three workload sizes of the figure, scaled.
pub fn sizes(scale: Scale) -> [(&'static str, u64); 3] {
    match scale {
        Scale::Full => [
            ("Small", 16 * 1024),
            ("Medium", 256 * 1024),
            ("Large", 4 * 1024 * 1024),
        ],
        Scale::Fast => [
            ("Small", 16 * 1024),
            ("Medium", 128 * 1024),
            ("Large", 2 * 1024 * 1024),
        ],
    }
}

/// Executions averaged per bar (the paper uses ten).
pub fn executions(scale: Scale) -> u32 {
    scale.pick(10, 3)
}

/// Runs the isolation experiment: an evaluation-only grid of one scenario
/// per (accelerator, size) against the four fixed policies, in parallel on
/// the work-stealing executor (the results are bit-identical to a serial
/// sweep — every cell runs on a fresh SoC).
pub fn run(scale: Scale) -> Data {
    let config = motivation_isolation_soc();
    let loops = executions(scale);
    let size_table = sizes(scale);

    // One scenario per (accelerator, size); `meta` carries the figure
    // coordinates for each scenario index.
    let mut scenarios = Vec::new();
    let mut meta: Vec<(String, &'static str)> = Vec::new();
    for (i, tile) in config.accels.iter().enumerate() {
        for (size_label, bytes) in size_table {
            let app = AppSpec {
                name: "fig2".into(),
                phases: vec![PhaseSpec {
                    name: size_label.into(),
                    threads: vec![ThreadSpec {
                        dataset_bytes: bytes,
                        chain: vec![AccelInstanceId(i as u16)],
                        loops,
                        check_output: true,
                    }],
                }],
            };
            let label = format!("{}/{}", tile.spec.profile.name, size_label);
            scenarios.push(Scenario::evaluate(config.clone(), app).label(label));
            meta.push((tile.spec.profile.name.clone(), size_label));
        }
    }

    let grid = Experiment::new()
        .protocol(Protocol::EvaluateOnly)
        .scenarios(scenarios)
        .policy_kinds(PolicyKind::FIXED[..4].iter().copied())
        .seed(42)
        .build()
        .expect("fig2 grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    let mut entries = Vec::new();
    for (s, (accel, size_label)) in meta.iter().enumerate() {
        let mut group = Vec::new();
        for (p, mode) in CoherenceMode::ALL.into_iter().enumerate() {
            let result = &results.cell(s, p, 0).result;
            let invs = &result.phases[0].invocations;
            let n = invs.len().max(1) as u64;
            let mean_cycles = invs.iter().map(|r| r.measurement.total_cycles).sum::<u64>() / n;
            let mean_mem = invs
                .iter()
                .map(|r| r.measurement.offchip_accesses)
                .sum::<f64>()
                / n as f64;
            group.push(Entry {
                accel: accel.clone(),
                size: size_label,
                mode,
                exec_cycles: mean_cycles,
                offchip: mean_mem,
                norm_time: 0.0,
                norm_mem: 0.0,
            });
        }
        let base_time = group[0].exec_cycles.max(1) as f64;
        let base_mem = group[0].offchip.max(1.0);
        for e in &mut group {
            e.norm_time = e.exec_cycles as f64 / base_time;
            e.norm_mem = e.offchip / base_mem;
        }
        entries.extend(group);
    }
    Data { entries }
}

/// Prints the figure as a table of normalized bars.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .entries
        .iter()
        .map(|e| {
            vec![
                e.accel.clone(),
                e.size.to_string(),
                e.mode.to_string(),
                table::ratio(e.norm_time),
                table::ratio(e.norm_mem),
                e.exec_cycles.to_string(),
                format!("{:.0}", e.offchip),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "accelerator",
                "size",
                "mode",
                "norm-time",
                "norm-mem",
                "cycles",
                "offchip"
            ],
            &rows
        )
    );
    // Shape summary: winners per size class.
    for (size_label, _) in sizes(Scale::Full) {
        let mut wins = [0usize; 4];
        let accels: std::collections::BTreeSet<String> =
            data.entries.iter().map(|e| e.accel.clone()).collect();
        for a in &accels {
            if let Some(w) = data.winner(a, size_label) {
                wins[w.index()] += 1;
            }
        }
        println!(
            "{size_label}: winners — non-coh {} | llc-coh {} | coh-dma {} | full-coh {}",
            wins[0], wins[1], wins[2], wins[3]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_all_bars() {
        let data = run(Scale::Fast);
        // 12 accelerators × 3 sizes × 4 modes.
        assert_eq!(data.entries.len(), 144);
        for e in &data.entries {
            assert!(e.exec_cycles > 0, "{e:?}");
            assert!(e.norm_time > 0.0);
        }
        // Baseline bars normalize to 1.
        for e in data
            .entries
            .iter()
            .filter(|e| e.mode == CoherenceMode::NonCohDma)
        {
            assert!((e.norm_time - 1.0).abs() < 1e-9);
        }
    }
}
