//! Section 6, "Cohmeleon Overhead": the fraction of total execution time
//! spent in Cohmeleon's status tracking, computation and decision making,
//! as a function of workload size. The paper measures 3–6% for 16 KiB
//! workloads, dropping below 0.1% for 4 MiB.

use cohmeleon_core::policy::{CohmeleonPolicy, Policy};
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::RewardWeights;
use cohmeleon_core::AccelInstanceId;
use cohmeleon_exp::{Experiment, PolicySpec, Protocol, Scenario, WorkStealing};
use cohmeleon_soc::config::soc0;
use cohmeleon_soc::{AppSpec, PhaseSpec, ThreadSpec, TimingParams};

use crate::scale::Scale;
use crate::table;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Workload size in bytes.
    pub bytes: u64,
    /// Total invocation time in cycles.
    pub total_cycles: u64,
    /// Cycles charged to Cohmeleon's sense/decide/update software.
    pub decision_cycles: u64,
    /// `decision_cycles / total_cycles`.
    pub fraction: f64,
}

/// The regenerated sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// Points, smallest workload first.
    pub points: Vec<Point>,
}

/// Runs the overhead sweep on SoC0 with an untrained (but non-exploring)
/// Cohmeleon policy — the steady-state decision path.
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let decision_cycles = TimingParams::default().decision_cohmeleon_cycles;
    let sweep: Vec<u64> = scale.pick(
        vec![
            16 * 1024,
            64 * 1024,
            256 * 1024,
            1024 * 1024,
            4 * 1024 * 1024,
        ],
        vec![16 * 1024, 256 * 1024],
    );

    // One evaluation-only scenario per workload size, all running the
    // frozen (steady-state) Cohmeleon decision path.
    let scenarios = sweep.iter().map(|&bytes| {
        let app = AppSpec {
            name: format!("overhead-{bytes}"),
            phases: vec![PhaseSpec {
                name: "sweep".into(),
                threads: vec![ThreadSpec {
                    dataset_bytes: bytes,
                    chain: vec![AccelInstanceId(0)],
                    loops: 1,
                    check_output: false,
                }],
            }],
        };
        Scenario::evaluate(config.clone(), app).label(format!("{} KiB", bytes / 1024))
    });
    let grid = Experiment::new()
        .protocol(Protocol::EvaluateOnly)
        .scenarios(scenarios)
        .policy(PolicySpec::custom("cohmeleon-frozen", |_, _, seed| {
            let mut policy = CohmeleonPolicy::new(
                RewardWeights::paper_default(),
                LearningSchedule::paper_default(10),
                seed,
            );
            policy.freeze(); // steady state: decisions only, no exploration
            Box::new(policy)
        }))
        .seed(7)
        .build()
        .expect("overhead grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    let points = sweep
        .iter()
        .enumerate()
        .map(|(s, &bytes)| {
            let rec = &results.cell(s, 0, 0).result.phases[0].invocations[0];
            let total = rec.measurement.total_cycles;
            Point {
                bytes,
                total_cycles: total,
                decision_cycles,
                fraction: decision_cycles as f64 / total.max(1) as f64,
            }
        })
        .collect();
    Data { points }
}

/// Prints the sweep.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{} KiB", p.bytes / 1024),
                p.total_cycles.to_string(),
                p.decision_cycles.to_string(),
                table::percent(p.fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["workload", "total cycles", "cohmeleon cycles", "overhead"],
            &rows
        )
    );
    if let (Some(first), Some(last)) = (data.points.first(), data.points.last()) {
        println!(
            "overhead: {} at {} KiB → {} at {} KiB (paper: 3–6% at 16 KiB, <0.1% at 4 MiB)",
            table::percent(first.fraction),
            first.bytes / 1024,
            table::percent(last.fraction),
            last.bytes / 1024
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shrinks_with_workload_size() {
        let data = run(Scale::Fast);
        assert_eq!(data.points.len(), 2);
        assert!(data.points[0].fraction > data.points[1].fraction);
        // Small-workload overhead is in the paper's single-digit-percent
        // regime; large workloads amortise it away.
        assert!(data.points[0].fraction > 0.005);
        assert!(data.points[0].fraction < 0.20);
    }
}
