//! Figure 3: performance degradation under parallel accelerator execution.
//!
//! Medium (256 KiB) workloads on the 12-accelerator motivation SoC
//! (3 × {FFT, Night-vision, Sort, SPMV}); 1, 4, 8 and 12 accelerators run
//! concurrently, each invoked repeatedly from its own thread. Bars are
//! normalized to the single-accelerator non-coherent-DMA result.

use cohmeleon_core::{AccelInstanceId, CoherenceMode};
use cohmeleon_exp::{Experiment, PolicyKind, Protocol, Scenario, WorkStealing};
use cohmeleon_soc::config::motivation_parallel_soc;
use cohmeleon_soc::{AppSpec, PhaseSpec, ThreadSpec};

use crate::scale::Scale;
use crate::table;

/// One bar pair of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Number of accelerators running concurrently.
    pub parallel: usize,
    /// Coherence mode.
    pub mode: CoherenceMode,
    /// Mean per-invocation execution time (cycles).
    pub exec_cycles: f64,
    /// Mean per-invocation off-chip accesses.
    pub offchip: f64,
    /// Normalized to (1 accelerator, non-coherent DMA).
    pub norm_time: f64,
    /// Normalized off-chip accesses.
    pub norm_mem: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// Bars for every (parallelism, mode) pair.
    pub entries: Vec<Entry>,
}

impl Data {
    /// The entry for a (parallelism, mode) pair.
    pub fn get(&self, parallel: usize, mode: CoherenceMode) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.parallel == parallel && e.mode == mode)
    }
}

/// Parallelism levels of the figure.
pub const PARALLELISM: [usize; 4] = [1, 4, 8, 12];

/// Runs the parallel-execution experiment: an evaluation-only grid of one
/// scenario per parallelism level against the four fixed policies.
pub fn run(scale: Scale) -> Data {
    let config = motivation_parallel_soc();
    let bytes = scale.pick(256 * 1024, 96 * 1024);
    let loops = scale.pick(5, 2);

    let scenarios = PARALLELISM.map(|parallel| {
        let app = AppSpec {
            name: format!("fig3-{parallel}"),
            phases: vec![PhaseSpec {
                name: "parallel".into(),
                threads: (0..parallel)
                    .map(|i| ThreadSpec {
                        dataset_bytes: bytes,
                        chain: vec![AccelInstanceId(i as u16)],
                        loops,
                        check_output: false,
                    })
                    .collect(),
            }],
        };
        Scenario::evaluate(config.clone(), app).label(format!("{parallel} acc"))
    });
    let grid = Experiment::new()
        .protocol(Protocol::EvaluateOnly)
        .scenarios(scenarios)
        .policy_kinds(PolicyKind::FIXED[..4].iter().copied())
        .seed(42)
        .build()
        .expect("fig3 grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    // Raw means per (parallelism, mode).
    let mut raw: Vec<(usize, CoherenceMode, f64, f64)> = Vec::new();
    for (s, parallel) in PARALLELISM.into_iter().enumerate() {
        for (p, mode) in CoherenceMode::ALL.into_iter().enumerate() {
            let invs = &results.cell(s, p, 0).result.phases[0].invocations;
            let n = invs.len().max(1) as f64;
            let mean_time =
                invs.iter().map(|r| r.measurement.total_cycles as f64).sum::<f64>() / n;
            let mean_mem = invs
                .iter()
                .map(|r| r.measurement.offchip_accesses)
                .sum::<f64>()
                / n;
            raw.push((parallel, mode, mean_time, mean_mem));
        }
    }

    let (base_time, base_mem) = raw
        .iter()
        .find(|(p, m, _, _)| *p == 1 && *m == CoherenceMode::NonCohDma)
        .map(|(_, _, t, m)| (*t, m.max(1.0)))
        .expect("baseline present");

    let entries = raw
        .into_iter()
        .map(|(parallel, mode, exec_cycles, offchip)| Entry {
            parallel,
            mode,
            exec_cycles,
            offchip,
            norm_time: exec_cycles / base_time,
            norm_mem: offchip / base_mem,
        })
        .collect();
    Data { entries }
}

/// Prints the figure.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .entries
        .iter()
        .map(|e| {
            vec![
                format!("{} acc", e.parallel),
                e.mode.to_string(),
                table::ratio(e.norm_time),
                table::ratio(e.norm_mem),
                format!("{:.0}", e.exec_cycles),
                format!("{:.0}", e.offchip),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["parallel", "mode", "norm-time", "norm-mem", "cycles", "offchip"],
            &rows
        )
    );
    // Shape summary: slowdown of each mode from 1 to 12 accelerators.
    for mode in CoherenceMode::ALL {
        let t1 = data.get(1, mode).map(|e| e.norm_time).unwrap_or(1.0);
        let t12 = data.get(12, mode).map(|e| e.norm_time).unwrap_or(1.0);
        println!("{mode}: 12-accelerator slowdown {:.1}x", t12 / t1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_covers_all_levels() {
        let data = run(Scale::Fast);
        assert_eq!(data.entries.len(), 16);
        let base = data.get(1, CoherenceMode::NonCohDma).unwrap();
        assert!((base.norm_time - 1.0).abs() < 1e-9);
        // Contention can only slow things down.
        for mode in CoherenceMode::ALL {
            let t1 = data.get(1, mode).unwrap().norm_time;
            let t12 = data.get(12, mode).unwrap().norm_time;
            assert!(t12 >= t1 * 0.9, "{mode}: {t1} -> {t12}");
        }
    }
}
