//! Figure 7: breakdown of the coherence decisions made by Cohmeleon and
//! the manually-tuned algorithm, overall and per workload-size category
//! (S/M/L/XL).

use cohmeleon_core::CoherenceMode;
use cohmeleon_exp::{Experiment, PolicyKind, WorkStealing};
use cohmeleon_soc::config::soc0;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::sizes::SizeClass;

use crate::scale::Scale;
use crate::table;

/// One stacked bar: the decision mix of a policy for one size category.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Policy name.
    pub policy: String,
    /// Size label (`all`, `S`, `M`, `L`, `XL`).
    pub size: String,
    /// Fraction of invocations per mode, indexed by
    /// [`CoherenceMode::index`]; sums to 1 unless the bucket is empty.
    pub fractions: [f64; 4],
    /// Number of invocations in the bucket.
    pub count: usize,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// Rows, policy-major: `all` first, then S/M/L/XL.
    pub rows: Vec<Row>,
}

impl Data {
    /// Row lookup.
    pub fn get(&self, policy: &str, size: &str) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.size == size)
    }
}

/// Runs both policies on the SoC0 evaluation application and tallies their
/// decisions.
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let train_iterations = scale.pick(10, 2);
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 3001);
    let test_app = generate_app(&config, &gen_params, 3002);

    let grid = Experiment::train_test(config.clone(), train_app, test_app)
        .policy_kinds([PolicyKind::Manual, PolicyKind::Cohmeleon])
        .seed(7)
        .train_iterations(train_iterations)
        .build()
        .expect("fig7 grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    let mut rows = Vec::new();
    for cell in results.iter() {
        let result = &cell.result;
        let name = result.policy.clone();

        let records: Vec<(SizeClass, CoherenceMode)> = result
            .invocations()
            .map(|r| (SizeClass::classify(r.footprint_bytes, &config), r.mode))
            .collect();

        rows.push(tally(&name, "all", records.iter().map(|(_, m)| *m)));
        for class in SizeClass::ALL {
            rows.push(tally(
                &name,
                class.label(),
                records
                    .iter()
                    .filter(|(c, _)| *c == class)
                    .map(|(_, m)| *m),
            ));
        }
    }
    Data { rows }
}

fn tally(policy: &str, size: &str, modes: impl Iterator<Item = CoherenceMode>) -> Row {
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    for m in modes {
        counts[m.index()] += 1;
        total += 1;
    }
    let fractions = if total == 0 {
        [0.0; 4]
    } else {
        counts.map(|c| c as f64 / total as f64)
    };
    Row {
        policy: policy.to_owned(),
        size: size.to_owned(),
        fractions,
        count: total,
    }
}

/// Prints the breakdown.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .rows
        .iter()
        .map(|r| {
            let mut cells = vec![format!("{} ({})", r.policy, r.size)];
            for m in CoherenceMode::ALL {
                cells.push(table::percent(r.fractions[m.index()]));
            }
            cells.push(r.count.to_string());
            cells
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["policy (size)", "non-coh-dma", "llc-coh-dma", "coh-dma", "full-coh", "n"],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_tallies_both_policies() {
        let data = run(Scale::Fast);
        // 2 policies × (all + 4 size classes).
        assert_eq!(data.rows.len(), 10);
        for r in &data.rows {
            let sum: f64 = r.fractions.iter().sum();
            if r.count > 0 {
                assert!((sum - 1.0).abs() < 1e-9, "{r:?}");
            }
        }
        let manual_all = data.get("manual", "all").unwrap();
        assert!(manual_all.count > 0);
        let coh_all = data.get("cohmeleon", "all").unwrap();
        assert_eq!(coh_all.count, manual_all.count);
    }
}
