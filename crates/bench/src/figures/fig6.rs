//! Figure 6: design-space exploration of the reward function on SoC0.
//!
//! Fifteen Cohmeleon models are trained (50 iterations each in the paper),
//! varying only the reward weights `(x, y, z)` for execution time,
//! communication ratio and off-chip accesses. Each trained model — plus the
//! seven baseline policies — is tested on a different application instance;
//! the scatter plots the geometric means of per-phase normalized execution
//! time against normalized off-chip accesses.

use cohmeleon_core::policy::CohmeleonPolicy;
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::RewardWeights;
use cohmeleon_exp::{Experiment, PolicyKind, PolicySpec, WorkStealing};
use cohmeleon_soc::config::soc0;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::scale::Scale;
use crate::table;

/// The 15 reward weightings explored: `(x, y, z)` percentages for
/// (execution time, communication ratio, off-chip accesses). Includes the
/// two configurations the paper calls out as Pareto-optimal — (67.5, 7.5,
/// 25) and (12.5, 12.5, 75) — and two that weigh > 90% for off-chip
/// accesses, which the paper found significantly worse.
pub const REWARD_POINTS: [(f64, f64, f64); 15] = [
    (67.5, 7.5, 25.0),
    (12.5, 12.5, 75.0),
    (100.0, 0.0, 0.0),
    (75.0, 25.0, 0.0),
    (75.0, 0.0, 25.0),
    (50.0, 25.0, 25.0),
    (50.0, 0.0, 50.0),
    (40.0, 20.0, 40.0),
    (33.3, 33.3, 33.4),
    (25.0, 50.0, 25.0),
    (25.0, 25.0, 50.0),
    (20.0, 10.0, 70.0),
    (10.0, 10.0, 80.0),
    (5.0, 0.0, 95.0),
    (2.5, 2.5, 95.0),
];

/// One scatter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Series label (`cohmeleon(x/y/z)` or a baseline policy name).
    pub label: String,
    /// Whether this is one of the Cohmeleon reward variants.
    pub is_cohmeleon: bool,
    /// Geometric mean of per-phase normalized execution time.
    pub geo_time: f64,
    /// Geometric mean of per-phase normalized off-chip accesses.
    pub geo_mem: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// Baseline and Cohmeleon points.
    pub points: Vec<Point>,
}

impl Data {
    /// The Cohmeleon points only.
    pub fn cohmeleon_points(&self) -> impl Iterator<Item = &Point> {
        self.points.iter().filter(|p| p.is_cohmeleon)
    }

    /// Is `candidate` Pareto-dominated by any other point?
    pub fn dominated(&self, candidate: &Point) -> bool {
        self.points.iter().any(|p| {
            (p.geo_time < candidate.geo_time && p.geo_mem <= candidate.geo_mem)
                || (p.geo_time <= candidate.geo_time && p.geo_mem < candidate.geo_mem)
        })
    }
}

/// Runs the DSE as one grid: the seven baseline policies plus up to
/// fifteen custom reward-weight Cohmeleon variants, all normalized against
/// the fixed non-coherent-DMA cell (policy 0).
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let train_iterations = scale.pick(50, 2);
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 2001);
    let test_app = generate_app(&config, &gen_params, 2002);

    // Baselines (everything but Cohmeleon), then the reward variants.
    let baseline_kinds: Vec<PolicyKind> = PolicyKind::ALL
        .into_iter()
        .filter(|k| *k != PolicyKind::Cohmeleon)
        .collect();
    let n_baselines = baseline_kinds.len();
    let reward_points = scale.pick(REWARD_POINTS.len(), 4);
    let variants = REWARD_POINTS[..reward_points]
        .iter()
        .enumerate()
        .map(|(i, &(x, y, z))| {
            // Each variant trains with its own policy seed (7 + i), as the
            // paper trains fifteen independent models.
            PolicySpec::custom(format!("cohmeleon({x}/{y}/{z})"), move |_, iters, _| {
                let weights =
                    RewardWeights::new(x, y, z).expect("reward points are valid weightings");
                Box::new(CohmeleonPolicy::new(
                    weights,
                    LearningSchedule::paper_default(iters),
                    7 + i as u64,
                ))
            })
        });

    let grid = Experiment::train_test(config, train_app, test_app)
        .policy_kinds(baseline_kinds)
        .policies(variants)
        .seed(7)
        .train_iterations(train_iterations)
        .build()
        .expect("fig6 grid is non-empty");
    let results = grid.collect(&WorkStealing::new());

    let points = results
        .into_outcomes_against(0)
        .into_iter()
        .map(|(cell, outcome)| {
            let is_cohmeleon = cell.policy >= n_baselines;
            Point {
                // Baselines report the policy's own name; variants the
                // reward-weight label of their spec.
                label: grid.policies()[cell.policy].policy_label().to_owned(),
                is_cohmeleon,
                geo_time: outcome.geo_time,
                geo_mem: outcome.geo_mem,
            }
        })
        .collect();
    Data { points }
}

/// Prints the scatter.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                table::ratio(p.geo_time),
                table::ratio(p.geo_mem),
                if data.dominated(p) { "" } else { "pareto" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["policy", "geo-time", "geo-mem", ""], &rows)
    );
    let coh: Vec<&Point> = data.cohmeleon_points().collect();
    if !coh.is_empty() {
        let tmin = coh.iter().map(|p| p.geo_time).fold(f64::MAX, f64::min);
        let tmax = coh.iter().map(|p| p.geo_time).fold(f64::MIN, f64::max);
        let mmin = coh.iter().map(|p| p.geo_mem).fold(f64::MAX, f64::min);
        let mmax = coh.iter().map(|p| p.geo_mem).fold(f64::MIN, f64::max);
        println!(
            "cohmeleon cluster: time {:.2}..{:.2}, mem {:.2}..{:.2} ({} points)",
            tmin,
            tmax,
            mmin,
            mmax,
            coh.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_points_are_valid_weightings() {
        for (x, y, z) in REWARD_POINTS {
            RewardWeights::new(x, y, z).expect("valid");
        }
        // The paper's two named Pareto points are present.
        assert!(REWARD_POINTS.contains(&(67.5, 7.5, 25.0)));
        assert!(REWARD_POINTS.contains(&(12.5, 12.5, 75.0)));
        // Two points weigh > 90% for off-chip accesses.
        let heavy = REWARD_POINTS.iter().filter(|(_, _, z)| *z > 90.0).count();
        assert_eq!(heavy, 2);
    }

    #[test]
    fn fast_run_produces_baselines_and_cohmeleon_points() {
        let data = run(Scale::Fast);
        assert_eq!(data.points.iter().filter(|p| !p.is_cohmeleon).count(), 7);
        assert_eq!(data.cohmeleon_points().count(), 4);
        for p in &data.points {
            assert!(p.geo_time > 0.0 && p.geo_mem >= 0.0);
        }
    }
}
