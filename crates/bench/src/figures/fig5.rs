//! Figure 5: the four named phases of the evaluation application on SoC0,
//! under all eight coherence policies. Bars are per-phase execution time and
//! off-chip accesses normalized to the fixed non-coherent-DMA policy.

use cohmeleon_exp::{Experiment, PolicyKind, WorkStealing};
use cohmeleon_soc::config::soc0;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::phases::figure5_app;

use crate::scale::Scale;
use crate::table;

/// One bar pair of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Phase name (figure panel).
    pub phase: String,
    /// Policy name (bar position).
    pub policy: String,
    /// Execution time normalized to fixed non-coherent DMA.
    pub norm_time: f64,
    /// Off-chip accesses normalized to fixed non-coherent DMA.
    pub norm_mem: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// All bars, phase-major in policy order.
    pub entries: Vec<Entry>,
}

impl Data {
    /// Entry lookup by phase and policy name.
    pub fn get(&self, phase: &str, policy: &str) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.phase == phase && e.policy == policy)
    }

    /// Distinct phase names in order of first appearance.
    pub fn phases(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.phase) {
                out.push(e.phase.clone());
            }
        }
        out
    }
}

/// Runs the experiment: train Cohmeleon on a random evaluation-app
/// instance, then test every policy on the Figure 5 application.
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let train_iterations = scale.pick(20, 2);
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 1001);
    let test_app = figure5_app(&config, 77);

    let grid = Experiment::train_test(config, train_app, test_app)
        .policy_kinds(PolicyKind::ALL)
        .seed(7)
        .train_iterations(train_iterations)
        .build()
        .expect("fig5 grid is non-empty");
    let outcomes = grid
        .collect(&WorkStealing::new())
        .into_outcomes_against(0);

    let mut entries = Vec::new();
    for (_, outcome) in &outcomes {
        for (phase, (t, m)) in outcome
            .result
            .phases
            .iter()
            .zip(&outcome.normalized_phases)
        {
            entries.push(Entry {
                phase: phase.name.clone(),
                policy: outcome.policy.clone(),
                norm_time: *t,
                norm_mem: *m,
            });
        }
    }
    Data { entries }
}

/// Prints the figure.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .entries
        .iter()
        .map(|e| {
            vec![
                e.phase.clone(),
                e.policy.clone(),
                table::ratio(e.norm_time),
                table::ratio(e.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["phase", "policy", "norm-time", "norm-mem"], &rows)
    );
    for phase in data.phases() {
        let best = data
            .entries
            .iter()
            .filter(|e| e.phase == phase)
            .min_by(|a, b| a.norm_time.partial_cmp(&b.norm_time).expect("finite"))
            .expect("non-empty phase");
        let coh = data.get(&phase, "cohmeleon").expect("cohmeleon present");
        println!(
            "{phase}: best={} ({}); cohmeleon {} time / {} mem",
            best.policy,
            table::ratio(best.norm_time),
            table::ratio(coh.norm_time),
            table::ratio(coh.norm_mem),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_has_four_phases_and_eight_policies() {
        let data = run(Scale::Fast);
        assert_eq!(data.phases().len(), 4);
        assert_eq!(data.entries.len(), 4 * 8);
        // The baseline policy normalizes to 1 in every phase.
        for phase in data.phases() {
            let base = data.get(&phase, "fixed-non-coh-dma").unwrap();
            assert!((base.norm_time - 1.0).abs() < 1e-9);
        }
    }
}
