//! Weight-sensitivity sweep: reward weights (and agent scope) as grid
//! axes, Figure-6 style.
//!
//! The paper's Figure 6 explores the reward weighting `(x, y, z)` by
//! training fifteen independent models; this harness rides the learner
//! grid instead — each [`WeightPreset`] is a serializable [`LearnerSpec`]
//! cell, crossed with the agent scope ([`AgentScope::Global`] vs
//! [`AgentScope::PerKind`]), so weight exploration gets resumable
//! checkpoints, shard workers and JSONL artifacts for free (exactly like
//! `learner_ablation`). Every cell is normalized against the paper cell
//! (global scope, paper weights — the grid's policy 0).

use std::collections::HashMap;

use cohmeleon_exp::{
    AgentScope, CellRecord, Experiment, JsonlSink, LearnerSpec, WeightPreset,
};
use cohmeleon_sim::stats::geometric_mean;
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};

use crate::scale::Scale;
use crate::table;

/// One cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// The learner configuration (paper components; scope/weights vary).
    pub spec: LearnerSpec,
    /// Its policy label (`"cohmeleon"` for the paper cell).
    pub label: String,
    /// Geometric-mean normalized execution time vs. the paper cell.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses vs. the paper cell.
    pub norm_mem: f64,
}

/// The sweep results plus the per-cell records the JSONL artifact holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// One arm per cell, in grid order (the paper cell first).
    pub arms: Vec<Arm>,
    /// The flat per-cell records (what [`write_jsonl`] persists).
    pub records: Vec<CellRecord>,
}

/// The swept scopes: the paper's single global agent, and one agent per
/// accelerator kind (Alsop et al.'s specialization argument).
pub const SCOPES: [AgentScope; 2] = [AgentScope::Global, AgentScope::PerKind];

/// The swept cells: [`SCOPES`] × every [`WeightPreset`], scope-major, so
/// cell 0 is the paper configuration (global + paper weights) and each
/// scope sweeps the full weight range.
pub fn specs() -> Vec<LearnerSpec> {
    LearnerSpec::scope_weight_grid(&SCOPES, &WeightPreset::ALL)
}

/// The sweep as an [`Experiment`] builder: one scenario (SoC1
/// train/test), the 10 cells of [`specs`], one seed, with the
/// conventional checkpoint path (`weight_sensitivity.jsonl`) pre-set so
/// `--resume` runs pick up where a killed sweep stopped.
pub fn experiment(scale: Scale) -> Experiment {
    let config = soc1();
    let iterations = scale.pick(10, 2);
    let gen_params = scale.pick(GeneratorParams::coverage(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 7101);
    let test_app = generate_app(&config, &gen_params, 7102);
    Experiment::train_test(config, train_app, test_app)
        .learners(specs().iter().copied())
        .seed(13)
        .train_iterations(iterations)
        .resume_from("weight_sensitivity.jsonl")
}

/// Runs the sweep in-process and normalizes every cell against the paper
/// cell (cell 0).
pub fn run(scale: Scale) -> Data {
    let grid = experiment(scale)
        .build()
        .expect("weight-sensitivity axes are non-empty");
    let results = grid.collect(&cohmeleon_exp::WorkStealing::new());
    let records: Vec<CellRecord> = results.iter().map(CellRecord::from_cell).collect();
    data_from_records(records)
}

/// Rebuilds the table from persisted cell records — the `--resume` /
/// `--shards` / post-hoc regeneration path, numerically identical to the
/// live normalization (same integer totals divided in the same order).
pub fn data_from_records(records: Vec<CellRecord>) -> Data {
    let specs = specs();
    let baselines: HashMap<(usize, usize), &CellRecord> = records
        .iter()
        .filter(|r| r.policy_index == 0)
        .map(|r| ((r.scenario_index, r.seed_index), r))
        .collect();
    let arms = records
        .iter()
        .map(|r| {
            let (norm_time, norm_mem) = if r.policy_index == 0 {
                (1.0, 1.0)
            } else {
                let base = baselines
                    .get(&(r.scenario_index, r.seed_index))
                    .expect("baseline (policy 0) record present for every scenario/seed");
                let ratios: Vec<(f64, f64)> = r
                    .phases
                    .iter()
                    .zip(&base.phases)
                    .map(|(p, b)| {
                        (
                            p.1 as f64 / b.1.max(1) as f64,
                            p.2 as f64 / b.2.max(1) as f64,
                        )
                    })
                    .collect();
                (
                    geometric_mean(ratios.iter().map(|r| r.0)).unwrap_or(1.0),
                    geometric_mean(ratios.iter().map(|r| r.1)).unwrap_or(1.0),
                )
            };
            Arm {
                spec: specs[r.policy_index],
                label: r.policy.clone(),
                norm_time,
                norm_mem,
            }
        })
        .collect();
    Data { arms, records }
}

/// Writes the per-cell records as JSONL (the CI artifact).
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written.
pub fn write_jsonl(data: &Data, path: &str) -> std::io::Result<()> {
    let mut sink = JsonlSink::create(path)?;
    for record in &data.records {
        sink.write_record(record);
    }
    sink.into_inner();
    Ok(())
}

/// Prints the weight-sensitivity table, one row per (scope, weights) cell.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .arms
        .iter()
        .map(|a| {
            vec![
                a.spec.scope.label().to_owned(),
                a.spec.weights.label().to_owned(),
                a.label.clone(),
                table::ratio(a.norm_time),
                table::ratio(a.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["scope", "weights", "label", "norm-time", "norm-mem"], &rows)
    );
    println!("(normalized to global scope + paper weights; >1.00 means worse)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_scopes_and_presets() {
        let specs = specs();
        assert_eq!(specs.len(), SCOPES.len() * WeightPreset::ALL.len());
        assert_eq!(specs[0], LearnerSpec::paper());
        let labels: std::collections::HashSet<String> =
            specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len(), "labels must be distinct");
        assert!(labels.contains("cohmeleon"));
    }

    #[test]
    fn fast_sweep_runs_all_cells_deterministically() {
        let a = run(Scale::Fast);
        assert_eq!(a.arms.len(), specs().len());
        assert_eq!(a.arms[0].label, "cohmeleon");
        assert_eq!(a.arms[0].norm_time, 1.0);
        for arm in &a.arms {
            assert!(arm.norm_time > 0.0, "{}", arm.label);
            assert!(arm.norm_mem >= 0.0, "{}", arm.label);
        }
        let b = run(Scale::Fast);
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_records_round_trip() {
        let data = run(Scale::Fast);
        let text: String = data
            .records
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let parsed = cohmeleon_exp::read_jsonl(&text).unwrap();
        assert_eq!(parsed, data.records);
    }
}
