//! Figure 8: performance over training iterations.
//!
//! Cohmeleon alternates one training iteration on the training instance
//! with one evaluation of the (temporarily frozen) model on the test
//! instance, for decay schedules of 10, 30 and 50 total iterations.
//! Iteration 0 is the untrained model — equivalent to the random policy.
//! Series are the geometric-mean normalized execution time and off-chip
//! accesses versus fixed non-coherent DMA.

use cohmeleon_core::policy::{CohmeleonPolicy, FixedPolicy, Policy};
use cohmeleon_core::qlearn::LearningSchedule;
use cohmeleon_core::reward::RewardWeights;
use cohmeleon_core::CoherenceMode;
use cohmeleon_exp::{Executor, WorkStealing};
use cohmeleon_soc::config::soc0;
use cohmeleon_soc::{run_app, Soc};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::runner::{evaluate_policy, summarize};

use crate::scale::Scale;
use crate::table;

/// One point of one training curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// The schedule length this curve belongs to (10/30/50).
    pub schedule: usize,
    /// Training iterations completed before this evaluation.
    pub iteration: usize,
    /// Geometric-mean normalized execution time.
    pub norm_time: f64,
    /// Geometric-mean normalized off-chip accesses.
    pub norm_mem: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// All points, curve-major.
    pub points: Vec<Point>,
}

impl Data {
    /// The curve for one schedule length.
    pub fn curve(&self, schedule: usize) -> Vec<&Point> {
        self.points
            .iter()
            .filter(|p| p.schedule == schedule)
            .collect()
    }
}

/// Runs the training-time experiment.
///
/// The alternating train-one/evaluate-one loop does not decompose into
/// independent grid cells (each evaluation shares the evolving model), so
/// each *curve* is one task on the sweep [`Executor`] — the same
/// scheduling layer the grid uses, without the hand-rolled channel code.
pub fn run(scale: Scale) -> Data {
    let config = soc0();
    let schedules: Vec<usize> = scale.pick(vec![10, 30, 50], vec![3, 5]);
    let gen_params = scale.pick(GeneratorParams::default(), GeneratorParams::quick());
    let train_app = generate_app(&config, &gen_params, 4001);
    let test_app = generate_app(&config, &gen_params, 4002);

    // Baseline for normalization.
    let mut baseline_policy = FixedPolicy::new(CoherenceMode::NonCohDma);
    let baseline = evaluate_policy(&config, &test_app, &mut baseline_policy, 7);

    let curve = |c: usize| {
        let schedule = schedules[c];
        let mut policy = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(schedule),
            7,
        );
        let mut points = Vec::new();
        for iteration in 0..=schedule {
            // Evaluate the current model with exploration disabled,
            // without disturbing the training state.
            let mut frozen = policy.clone();
            frozen.freeze();
            let result = evaluate_policy(&config, &test_app, &mut frozen, 7);
            let outcome = summarize(result, &baseline);
            points.push(Point {
                schedule,
                iteration,
                norm_time: outcome.geo_time,
                norm_mem: outcome.geo_mem,
            });
            if iteration < schedule {
                policy.begin_iteration(iteration);
                let mut soc = Soc::new(config.clone());
                run_app(
                    &mut soc,
                    &train_app,
                    &mut policy,
                    7_u64.wrapping_add(iteration as u64 * 7919),
                );
            }
        }
        points
    };

    let mut curves: Vec<(usize, Vec<Point>)> = Vec::new();
    WorkStealing::new().run(schedules.len(), &curve, &mut |c, points| {
        curves.push((schedules[c], points));
    });
    curves.sort_by_key(|(s, _)| *s);
    Data {
        points: curves.into_iter().flat_map(|(_, pts)| pts).collect(),
    }
}

/// Prints the curves.
pub fn print(data: &Data) {
    let rows: Vec<Vec<String>> = data
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{} iterations", p.schedule),
                p.iteration.to_string(),
                table::ratio(p.norm_time),
                table::ratio(p.norm_mem),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["schedule", "iteration", "norm-time", "norm-mem"], &rows)
    );
    for &schedule in &[10usize, 30, 50] {
        let curve = data.curve(schedule);
        if curve.is_empty() {
            continue;
        }
        let first = curve.first().expect("non-empty");
        let last = curve.last().expect("non-empty");
        println!(
            "{schedule} iterations: untrained {} → trained {} (time)",
            table::ratio(first.norm_time),
            table::ratio(last.norm_time)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_builds_full_curves() {
        let data = run(Scale::Fast);
        let c3 = data.curve(3);
        let c5 = data.curve(5);
        assert_eq!(c3.len(), 4); // iterations 0..=3
        assert_eq!(c5.len(), 6);
        // Iterations are in order.
        for (i, p) in c3.iter().enumerate() {
            assert_eq!(p.iteration, i);
        }
    }

    #[test]
    fn training_does_not_hurt_compared_to_untrained() {
        let data = run(Scale::Fast);
        for schedule in [3usize, 5] {
            let curve = data.curve(schedule);
            let first = curve.first().unwrap().norm_time;
            let last = curve.last().unwrap().norm_time;
            assert!(
                last <= first * 1.10,
                "schedule {schedule}: trained {last} much worse than untrained {first}"
            );
        }
    }
}
