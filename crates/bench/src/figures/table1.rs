//! Table 1: accelerator coherence modes in the literature.

use cohmeleon_core::modes::{CoherenceMode, LITERATURE};

use crate::table;

/// Prints Table 1 from the classification data in `cohmeleon-core`.
pub fn print() {
    let rows: Vec<Vec<String>> = LITERATURE
        .iter()
        .map(|entry| {
            let mut cells = vec![entry.system.to_owned()];
            for mode in CoherenceMode::ALL {
                cells.push(if entry.modes.contains(mode) { "✓" } else { "" }.to_owned());
            }
            cells
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["system", "non-coh DMA", "LLC-coh DMA", "coh DMA", "fully-coh"],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_does_not_panic() {
        super::print();
    }
}
