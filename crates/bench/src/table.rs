//! Plain-text table rendering for harness output.

/// Renders rows as an aligned table with a header, TSV-friendly.
///
/// # Example
///
/// ```
/// use cohmeleon_bench::table::render;
///
/// let out = render(
///     &["mode", "time"],
///     &[vec!["non-coh".into(), "1.00".into()]],
/// );
/// assert!(out.contains("non-coh"));
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with one decimal.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let out = render(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.2345), "1.23");
        assert_eq!(percent(0.382), "38.2%");
    }
}
