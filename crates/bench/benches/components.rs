//! Micro-benchmarks of the simulation substrates: NoC transfers, cache
//! protocol operations, DRAM bursts, and the Cohmeleon decision path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cohmeleon_cache::{AddressMap, CacheGeometry, CacheId, CoherenceController, LineAddr};
use cohmeleon_core::policy::{CohmeleonPolicy, Policy};
use cohmeleon_core::qlearn::{LearningSchedule, QLearner, QTable};
use cohmeleon_core::reward::{InvocationMeasurement, RewardHistory, RewardWeights};
use cohmeleon_core::snapshot::{ArchParams, SystemSnapshot};
use cohmeleon_core::{AccelInstanceId, CoherenceMode, ModeSet, PartitionId, State};
use cohmeleon_mem::{DramConfig, DramController};
use cohmeleon_noc::{Coord, Noc, NocConfig, Plane};
use cohmeleon_sim::Cycle;

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc");
    group.bench_function("transfer-5x5-1kb", |b| {
        let mut noc = Noc::new(NocConfig::new(5, 5));
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            noc.transfer(
                Plane::DmaReq,
                Coord::new(0, 0),
                Coord::new(4, 4),
                1024,
                Cycle(t),
            )
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let l2 = CacheGeometry::new(32 * 1024, 4, 64);
    let llc = CacheGeometry::new(256 * 1024, 16, 64);

    group.bench_function("l2-access-streaming", |b| {
        let mut ctrl = CoherenceController::new(AddressMap::new(2), &[l2; 4], llc);
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 8192;
            ctrl.l2_access(CacheId(0), LineAddr(line), line.is_multiple_of(3))
        })
    });

    group.bench_function("coh-dma-access", |b| {
        let mut ctrl = CoherenceController::new(AddressMap::new(2), &[l2; 4], llc);
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 8192;
            ctrl.coh_dma_access(LineAddr(line), line.is_multiple_of(2))
        })
    });

    group.bench_function("flush-l2-512-lines", |b| {
        b.iter_with_setup(
            || {
                let mut ctrl =
                    CoherenceController::new(AddressMap::new(2), &[l2; 1], llc);
                for i in 0..512 {
                    ctrl.l2_access(CacheId(0), LineAddr(i), true);
                }
                ctrl
            },
            |mut ctrl| ctrl.flush_l2(CacheId(0)),
        )
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.bench_function("burst-64-lines", |b| {
        let mut dram = DramController::new(DramConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000;
            dram.burst_access(Cycle(t), 0, 64, false)
        })
    });
    group.finish();
}

fn bench_qlearning(c: &mut Criterion) {
    let mut group = c.benchmark_group("qlearn");
    group.bench_function("q-update", |b| {
        let mut learner = QLearner::new(LearningSchedule::paper_default(10), 7);
        let state = State::from_index(42);
        b.iter(|| learner.update(state, CoherenceMode::CohDma, black_box(0.7)))
    });
    group.bench_function("choose-epsilon-greedy", |b| {
        let mut learner = QLearner::new(LearningSchedule::paper_default(10), 7);
        let state = State::from_index(42);
        b.iter(|| learner.choose(state, ModeSet::all()))
    });
    group.bench_function("best-action-scan", |b| {
        let table = QTable::new();
        let state = State::from_index(100);
        b.iter(|| table.best_action(state, ModeSet::all()))
    });
    group.finish();
}

fn bench_decision_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision");
    let arch = ArchParams::new(32 * 1024, 256 * 1024, 2);
    let snapshot = SystemSnapshot::new(arch, vec![], 64 * 1024, vec![PartitionId(0)]);

    group.bench_function("state-from-snapshot", |b| {
        b.iter(|| State::from_snapshot(black_box(&snapshot)))
    });

    group.bench_function("cohmeleon-decide-observe", |b| {
        let mut policy = CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(10),
            7,
        );
        let m = InvocationMeasurement {
            total_cycles: 100_000,
            accel_active_cycles: 90_000,
            accel_comm_cycles: 30_000,
            offchip_accesses: 512.0,
            footprint_bytes: 64 * 1024,
        };
        b.iter(|| {
            let d = policy.decide(&snapshot, ModeSet::all(), AccelInstanceId(0));
            policy.observe(AccelInstanceId(0), &d, &m);
        })
    });

    group.bench_function("reward-record", |b| {
        let mut history = RewardHistory::new();
        let m = InvocationMeasurement {
            total_cycles: 100_000,
            accel_active_cycles: 90_000,
            accel_comm_cycles: 30_000,
            offchip_accesses: 512.0,
            footprint_bytes: 64 * 1024,
        };
        b.iter(|| history.record(AccelInstanceId(0), black_box(&m)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_noc,
    bench_cache,
    bench_dram,
    bench_qlearning,
    bench_decision_path,
);
criterion_main!(benches);
