//! Criterion benches exercising the code path of every paper figure at a
//! reduced scale. The full-scale regenerations are the `src/bin/` binaries;
//! these benches track the simulator's performance on the same paths.

use criterion::{criterion_group, criterion_main, Criterion};

use cohmeleon_bench::figures;
use cohmeleon_bench::Scale;
use cohmeleon_core::policy::{FixedPolicy, ManualPolicy};
use cohmeleon_core::manual::ManualThresholds;
use cohmeleon_core::{AccelInstanceId, CoherenceMode};
use cohmeleon_soc::config::{motivation_isolation_soc, soc0, soc1};
use cohmeleon_soc::{run_app, AppSpec, PhaseSpec, Soc, ThreadSpec};
use cohmeleon_workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_workloads::phases::figure5_app;

fn bench_fig2_isolation(c: &mut Criterion) {
    let config = motivation_isolation_soc();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for mode in CoherenceMode::ALL {
        group.bench_function(format!("small-invocation-{mode}"), |b| {
            b.iter(|| {
                let app = AppSpec {
                    name: "bench".into(),
                    phases: vec![PhaseSpec {
                        name: "p".into(),
                        threads: vec![ThreadSpec {
                            dataset_bytes: 16 * 1024,
                            chain: vec![AccelInstanceId(0)],
                            loops: 2,
                            check_output: false,
                        }],
                    }],
                };
                let mut soc = Soc::new(config.clone());
                let mut policy = FixedPolicy::new(mode);
                run_app(&mut soc, &app, &mut policy, 42)
            })
        });
    }
    group.finish();
}

fn bench_fig3_parallel(c: &mut Criterion) {
    let config = cohmeleon_soc::config::motivation_parallel_soc();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("four-parallel-medium", |b| {
        b.iter(|| {
            let app = AppSpec {
                name: "bench".into(),
                phases: vec![PhaseSpec {
                    name: "p".into(),
                    threads: (0..4)
                        .map(|i| ThreadSpec {
                            dataset_bytes: 96 * 1024,
                            chain: vec![AccelInstanceId(i as u16)],
                            loops: 2,
                            check_output: false,
                        })
                        .collect(),
                }],
            };
            let mut soc = Soc::new(config.clone());
            let mut policy = FixedPolicy::new(CoherenceMode::LlcCohDma);
            run_app(&mut soc, &app, &mut policy, 42)
        })
    });
    group.finish();
}

fn bench_fig5_phases(c: &mut Criterion) {
    let config = soc0();
    let app = figure5_app(&config, 77);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("four-phases-manual", |b| {
        b.iter(|| {
            let mut soc = Soc::new(config.clone());
            let mut policy =
                ManualPolicy::new(ManualThresholds::for_arch(&config.arch_params()));
            run_app(&mut soc, &app, &mut policy, 7)
        })
    });
    group.finish();
}

fn bench_fig6_training_iteration(c: &mut Criterion) {
    let config = soc0();
    let app = generate_app(&config, &GeneratorParams::quick(), 1);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("one-training-iteration", |b| {
        b.iter(|| {
            let mut policy = cohmeleon_core::policy::CohmeleonPolicy::new(
                cohmeleon_core::reward::RewardWeights::paper_default(),
                cohmeleon_core::qlearn::LearningSchedule::paper_default(10),
                7,
            );
            let mut soc = Soc::new(config.clone());
            run_app(&mut soc, &app, &mut policy, 7)
        })
    });
    group.finish();
}

fn bench_fig7_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("decision-breakdown-fast", |b| {
        b.iter(|| figures::fig7::run(Scale::Fast))
    });
    group.finish();
}

fn bench_fig8_alternation(c: &mut Criterion) {
    let config = soc1();
    let train = generate_app(&config, &GeneratorParams::quick(), 1);
    let test = generate_app(&config, &GeneratorParams::quick(), 2);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("train-then-test", |b| {
        b.iter(|| {
            let mut policy = cohmeleon_core::policy::CohmeleonPolicy::new(
                cohmeleon_core::reward::RewardWeights::paper_default(),
                cohmeleon_core::qlearn::LearningSchedule::paper_default(2),
                7,
            );
            cohmeleon_workloads::runner::run_protocol(&config, &train, &test, &mut policy, 2, 7)
        })
    });
    group.finish();
}

fn bench_fig9_suite(c: &mut Criterion) {
    let config = soc1();
    let app = generate_app(&config, &GeneratorParams::quick(), 1);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("policy-suite-soc1", |b| {
        b.iter(|| {
            let grid = cohmeleon_exp::Experiment::train_test(
                config.clone(),
                app.clone(),
                app.clone(),
            )
            .policy_kinds([
                cohmeleon_bench::PolicyKind::FixedNonCoh,
                cohmeleon_bench::PolicyKind::Manual,
                cohmeleon_bench::PolicyKind::Cohmeleon,
            ])
            .seed(3)
            .train_iterations(1)
            .build()
            .expect("non-empty suite");
            grid.collect(&cohmeleon_exp::WorkStealing::new())
                .into_outcomes_against(0)
        })
    });
    group.finish();
}

fn bench_overhead_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);
    group.bench_function("sweep-fast", |b| {
        b.iter(|| figures::overhead::run(Scale::Fast))
    });
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.bench_function("table1-literature", |b| {
        b.iter(|| cohmeleon_core::modes::LITERATURE.len())
    });
    group.bench_function("table2-suites", |b| {
        b.iter(|| cohmeleon_accel::table2::TABLE2.len())
    });
    group.bench_function("table4-configs", |b| {
        b.iter(cohmeleon_soc::config::table4)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2_isolation,
    bench_fig3_parallel,
    bench_fig5_phases,
    bench_fig6_training_iteration,
    bench_fig7_breakdown,
    bench_fig8_alternation,
    bench_fig9_suite,
    bench_overhead_sweep,
    bench_tables,
);
criterion_main!(benches);
