//! Deterministic network fault injection for the fleet and serve wire
//! protocols.
//!
//! The fleet queen/worker pair and the serve server/client pair both
//! speak newline-delimited text over `std::net::TcpStream` and both
//! claim strong invariants under network misbehavior: the fleet's
//! exactly-once ledger keeps finalized checkpoints byte-identical to a
//! clean serial run through worker kills and stalls, and serve's atomic
//! hot swap never lets a client observe a torn table. This crate turns
//! those claims into something a soak harness can pound on: a seeded
//! [`FaultPlan`] wraps each socket in a [`FaultyTransport`] that injects
//! faults — partial writes split across delayed chunks, read stalls past
//! the poll timeout, abrupt connection resets at chosen byte offsets,
//! duplicated fire-and-forget deliveries (`RECORD`/`DECIDE`), reordered
//! heartbeats — from its own deterministic RNG stream.
//!
//! Determinism is the whole point: every injected fault is logged as a
//! [`FaultEvent`] carrying its `(seed, conn, op)` coordinate, where
//! `conn` is the order the plan wrapped connections and `op` counts this
//! connection's transport calls. Re-running the same schedule with the
//! same seed replays the same fault decisions at the same coordinates,
//! so any failure a chaos soak finds is reproducible from one integer.
//!
//! What gets injected is role-aware (see [`Role`]): only lines the
//! protocols declare duplicate/reorder-safe are ever duplicated or
//! reordered (the fleet ledger dedups `RECORD`s, lease release and
//! heartbeat are idempotent; a duplicated serve `DECIDE` earns a second
//! reply the client must drain and may verify), and stalls surface as
//! synthetic [`WouldBlock`](std::io::ErrorKind::WouldBlock) on the
//! polling sides (queen, server) but as real bounded sleeps on the
//! blocking sides (worker, client).
//!
//! `FaultPlan` is always optional at the call sites
//! (`Option<FaultPlan>`): `None` constructs a [`FaultyTransport`] that
//! is a plain passthrough around the socket with no lock, no RNG and no
//! logging — the production path stays the production path.

#![warn(missing_docs)]

mod plan;
mod transport;

pub use plan::{ChaosConfig, FaultEvent, FaultKind, FaultPlan, Role};
pub use transport::FaultyTransport;
