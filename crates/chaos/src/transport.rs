//! The fault-injecting transport: a `Read + Write` wrapper around a
//! `TcpStream` that consults its connection's RNG stream on every call.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::plan::{ChaosConfig, FaultEvent, FaultKind, Role};

/// A socket wrapper that either passes straight through (the `None`
/// production path — no lock, no RNG, no logging) or injects faults from
/// a [`FaultPlan`](crate::FaultPlan)'s deterministic schedule.
///
/// Clones made with [`try_clone`](Self::try_clone) share the
/// connection's fault state, so the usual reader-half/writer-half split
/// both draw from (and advance) one op counter — the op index in a fault
/// coordinate counts *all* transport calls on the connection, reads and
/// writes alike, in the order the connection made them.
#[derive(Debug)]
pub struct FaultyTransport {
    stream: TcpStream,
    chaos: Option<Arc<Mutex<ConnState>>>,
}

/// The shared per-connection fault state.
#[derive(Debug)]
struct ConnState {
    rng: SmallRng,
    seed: u64,
    conn: u64,
    role: Role,
    config: ChaosConfig,
    /// Transport calls made on this connection so far (reads + writes).
    op: u64,
    /// Cumulative payload bytes the caller asked to write.
    written: u64,
    /// Cumulative bytes read.
    read: u64,
    /// The planned abrupt reset, if this connection drew one.
    reset: Option<ResetPoint>,
    /// Once the reset fires every further call errors `ConnectionReset`.
    tripped: bool,
    /// A reorder-held line awaiting the next written line.
    held: Option<Vec<u8>>,
    /// Duplicated request lines whose extra replies the peer still owes
    /// us (serve clients drain these to keep request/reply framing).
    pending_dup_replies: usize,
    log: Arc<Mutex<Vec<FaultEvent>>>,
}

#[derive(Debug, Clone, Copy)]
struct ResetPoint {
    offset: u64,
    on_write: bool,
}

impl ConnState {
    fn draw(&mut self, permille: u16) -> bool {
        self.rng.next_u64() % 1000 < u64::from(permille)
    }

    fn draw_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.rng.next_u64() % bound
    }

    fn record(&self, op: u64, kind: FaultKind) {
        self.log.lock().expect("chaos fault log").push(FaultEvent {
            seed: self.seed,
            conn: self.conn,
            op,
            role: self.role,
            kind,
        });
    }
}

/// What one chaotic `write` call should actually do, decided under the
/// state lock, performed outside it.
struct WriteScript {
    /// `Some(keep)` — write the first `keep` bytes, then shut the socket
    /// down and error (the planned reset tearing the line in flight).
    reset_keep: Option<usize>,
    /// The line was captured for reordering; report success, send nothing.
    hold: bool,
    /// Chunk boundaries for a split write (empty — single write).
    cuts: Vec<usize>,
    /// Delay between split chunks.
    delay: Duration,
    /// Deliver the buffer a second time after the first.
    duplicate: bool,
    /// A previously held line to deliver after this buffer.
    flush_held: Option<Vec<u8>>,
}

/// What one chaotic `read` call should do before touching the socket.
enum ReadScript {
    /// The planned reset fires: shut down and error.
    Reset,
    /// Sleep, then surface a synthetic `WouldBlock` (polling roles).
    Synthetic(Duration),
    /// Sleep, then perform the real read (blocking roles).
    Sleep(Duration),
    /// Just read.
    Normal,
}

fn reset_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        "chaos: injected connection reset",
    )
}

impl FaultyTransport {
    /// The production path: a plain passthrough around the socket.
    pub fn direct(stream: TcpStream) -> FaultyTransport {
        FaultyTransport {
            stream,
            chaos: None,
        }
    }

    /// Wraps `stream` with fault injection; called by
    /// [`FaultPlan::wrap`](crate::FaultPlan::wrap).
    pub(crate) fn chaos(
        stream: TcpStream,
        seed: u64,
        conn: u64,
        role: Role,
        config: ChaosConfig,
        log: Arc<Mutex<Vec<FaultEvent>>>,
    ) -> io::Result<FaultyTransport> {
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (conn.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let reset = if rng.next_u64() % 1000 < u64::from(config.reset) {
            Some(ResetPoint {
                offset: rng.next_u64() % config.reset_window.max(1),
                on_write: rng.next_u64() % 2 == 0,
            })
        } else {
            None
        };
        Ok(FaultyTransport {
            stream,
            chaos: Some(Arc::new(Mutex::new(ConnState {
                rng,
                seed,
                conn,
                role,
                config,
                op: 0,
                written: 0,
                read: 0,
                reset,
                tripped: false,
                held: None,
                pending_dup_replies: 0,
                log,
            }))),
        })
    }

    /// Wraps per the plan if one is given, else the direct passthrough —
    /// the one-liner every call site uses.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::wrap`](crate::FaultPlan::wrap) failure.
    pub fn from_plan(
        stream: TcpStream,
        plan: Option<&crate::FaultPlan>,
        role: Role,
    ) -> io::Result<FaultyTransport> {
        match plan {
            Some(plan) => plan.wrap(stream, role),
            None => Ok(FaultyTransport::direct(stream)),
        }
    }

    /// A second handle to the same connection (the reader/writer split),
    /// sharing the fault state and op counter.
    ///
    /// # Errors
    ///
    /// Propagates `TcpStream::try_clone` failure.
    pub fn try_clone(&self) -> io::Result<FaultyTransport> {
        Ok(FaultyTransport {
            stream: self.stream.try_clone()?,
            chaos: self.chaos.clone(),
        })
    }

    /// Delegates to [`TcpStream::set_nodelay`].
    ///
    /// # Errors
    ///
    /// As for [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.stream.set_nodelay(nodelay)
    }

    /// Delegates to [`TcpStream::set_read_timeout`].
    ///
    /// # Errors
    ///
    /// As for [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Delegates to [`TcpStream::shutdown`].
    ///
    /// # Errors
    ///
    /// As for [`TcpStream::shutdown`].
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.stream.shutdown(how)
    }

    /// Takes (and clears) the count of extra replies the peer owes this
    /// connection because request lines were duplicated in flight. The
    /// direct path always answers 0.
    pub fn take_pending_dup_replies(&self) -> usize {
        match &self.chaos {
            Some(state) => {
                let mut s = state.lock().expect("chaos connection state");
                std::mem::take(&mut s.pending_dup_replies)
            }
            None => 0,
        }
    }

    fn chaotic_write(&mut self, state: &Arc<Mutex<ConnState>>, buf: &[u8]) -> io::Result<usize> {
        let script = {
            let mut s = state.lock().expect("chaos connection state");
            if s.tripped {
                return Err(reset_error());
            }
            let op = s.op;
            s.op += 1;
            let config = s.config;
            if let Some(reset) = s.reset {
                if reset.on_write && s.written + buf.len() as u64 > reset.offset {
                    let keep = (reset.offset.saturating_sub(s.written)) as usize;
                    s.tripped = true;
                    s.record(op, FaultKind::Reset {
                        offset: reset.offset,
                        on_write: true,
                    });
                    Some(WriteScript {
                        reset_keep: Some(keep.min(buf.len())),
                        hold: false,
                        cuts: Vec::new(),
                        delay: Duration::ZERO,
                        duplicate: false,
                        flush_held: None,
                    })
                } else {
                    None
                }
            } else {
                None
            }
            .unwrap_or_else(
                || {
                    s.written += buf.len() as u64;
                    // Dup/reorder decisions only apply to a buffer that is
                    // exactly one complete line — which is how both
                    // protocols write.
                    let single_line = buf.last() == Some(&b'\n')
                        && buf.iter().filter(|&&b| b == b'\n').count() == 1;
                    if single_line
                        && s.held.is_none()
                        && s.role.reorderable(buf)
                        && s.draw(config.reorder)
                    {
                        s.held = Some(buf.to_vec());
                        s.record(op, FaultKind::HoldLine { bytes: buf.len() });
                        return WriteScript {
                            reset_keep: None,
                            hold: true,
                            cuts: Vec::new(),
                            delay: Duration::ZERO,
                            duplicate: false,
                            flush_held: None,
                        };
                    }
                    let duplicate =
                        single_line && s.role.duplicable(buf) && s.draw(config.duplicate);
                    if duplicate {
                        if s.role.dup_earns_reply(buf) {
                            s.pending_dup_replies += 1;
                        }
                        s.record(op, FaultKind::DuplicateLine { bytes: buf.len() });
                    }
                    let mut cuts = Vec::new();
                    let mut delay = Duration::ZERO;
                    if buf.len() >= 2 && s.draw(config.split_write) {
                        let parts = 2 + s.draw_range(3) as usize;
                        for _ in 0..parts - 1 {
                            cuts.push(1 + s.draw_range(buf.len() as u64 - 1) as usize);
                        }
                        cuts.sort_unstable();
                        cuts.dedup();
                        delay =
                            Duration::from_micros(s.draw_range(config.max_split_delay_us + 1));
                        s.record(op, FaultKind::SplitWrite {
                            parts: cuts.len() + 1,
                            bytes: buf.len(),
                        });
                    }
                    let flush_held = if single_line && s.held.is_some() {
                        let held = s.held.take();
                        if let Some(held) = &held {
                            s.record(op, FaultKind::FlushHeld { bytes: held.len() });
                        }
                        held
                    } else {
                        None
                    };
                    WriteScript {
                        reset_keep: None,
                        hold: false,
                        cuts,
                        delay,
                        duplicate,
                        flush_held,
                    }
                },
            )
        };

        // Perform the socket work outside the state lock so injected
        // delays never block the connection's other half on bookkeeping.
        if let Some(keep) = script.reset_keep {
            let _ = self.stream.write_all(&buf[..keep]);
            let _ = self.stream.flush();
            let _ = self.stream.shutdown(Shutdown::Both);
            return Err(reset_error());
        }
        if script.hold {
            return Ok(buf.len());
        }
        if script.cuts.is_empty() {
            self.stream.write_all(buf)?;
        } else {
            let mut start = 0;
            for &cut in &script.cuts {
                self.stream.write_all(&buf[start..cut])?;
                self.stream.flush()?;
                std::thread::sleep(script.delay);
                start = cut;
            }
            self.stream.write_all(&buf[start..])?;
        }
        if script.duplicate {
            self.stream.write_all(buf)?;
        }
        if let Some(held) = script.flush_held {
            self.stream.write_all(&held)?;
        }
        Ok(buf.len())
    }

    fn chaotic_read(&mut self, state: &Arc<Mutex<ConnState>>, buf: &mut [u8]) -> io::Result<usize> {
        let script = {
            let mut s = state.lock().expect("chaos connection state");
            if s.tripped {
                return Err(reset_error());
            }
            let op = s.op;
            s.op += 1;
            let config = s.config;
            let reset_point = s.reset;
            match reset_point {
                Some(reset) if !reset.on_write && s.read >= reset.offset => {
                    s.tripped = true;
                    s.record(op, FaultKind::Reset {
                        offset: reset.offset,
                        on_write: false,
                    });
                    ReadScript::Reset
                }
                _ if s.draw(config.stall) => {
                    let ms = 1 + s.draw_range(config.max_stall_ms.max(1));
                    let synthetic = s.role.synthetic_stall();
                    s.record(op, FaultKind::StallRead { ms, synthetic });
                    if synthetic {
                        ReadScript::Synthetic(Duration::from_millis(ms))
                    } else {
                        ReadScript::Sleep(Duration::from_millis(ms))
                    }
                }
                _ => ReadScript::Normal,
            }
        };
        match script {
            ReadScript::Reset => {
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(reset_error());
            }
            ReadScript::Synthetic(delay) => {
                std::thread::sleep(delay);
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "chaos: injected read stall",
                ));
            }
            ReadScript::Sleep(delay) => std::thread::sleep(delay),
            ReadScript::Normal => {}
        }
        let n = self.stream.read(buf)?;
        state.lock().expect("chaos connection state").read += n as u64;
        Ok(n)
    }
}

impl Read for FaultyTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.chaos.clone() {
            None => self.stream.read(buf),
            Some(state) => self.chaotic_read(&state, buf),
        }
    }
}

impl Write for FaultyTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.chaos.clone() {
            None => self.stream.write(buf),
            Some(state) => self.chaotic_write(&state, buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChaosConfig, FaultKind, FaultPlan, Role};
    use std::net::TcpListener;

    /// A connected loopback pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    fn read_all_lines(stream: TcpStream, expect: usize) -> Vec<String> {
        let mut reader = std::io::BufReader::new(stream);
        let mut lines = Vec::new();
        while lines.len() < expect {
            let mut line = String::new();
            use std::io::BufRead;
            if reader.read_line(&mut line).expect("read") == 0 {
                break;
            }
            // A tail that never got its newline is torn, not a line —
            // exactly how the protocols' LineReader treats it.
            if !line.ends_with('\n') {
                break;
            }
            lines.push(line.trim_end().to_string());
        }
        lines
    }

    fn quiet() -> ChaosConfig {
        ChaosConfig {
            split_write: 0,
            max_split_delay_us: 0,
            stall: 0,
            max_stall_ms: 1,
            reset: 0,
            reset_window: 1,
            duplicate: 0,
            reorder: 0,
        }
    }

    #[test]
    fn direct_path_is_a_plain_passthrough() {
        let (a, b) = pair();
        let mut t = FaultyTransport::direct(a);
        t.write_all(b"HELLO fleet/1 w\n").unwrap();
        assert_eq!(t.take_pending_dup_replies(), 0);
        drop(t);
        assert_eq!(read_all_lines(b, 1), vec!["HELLO fleet/1 w"]);
    }

    #[test]
    fn split_write_preserves_bytes() {
        let (a, b) = pair();
        let plan = FaultPlan::with_config(7, ChaosConfig {
            split_write: 1000,
            ..quiet()
        });
        let mut t = plan.wrap(a, Role::Worker).unwrap();
        t.write_all(b"LEASE\n").unwrap();
        t.write_all(b"HELLO fleet/1 worker-0\n").unwrap();
        drop(t);
        assert_eq!(
            read_all_lines(b, 2),
            vec!["LEASE", "HELLO fleet/1 worker-0"]
        );
        assert!(plan
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::SplitWrite { .. })));
        assert_eq!(plan.fault_count(), 2);
    }

    #[test]
    fn duplicate_applies_only_to_dup_safe_lines() {
        let (a, b) = pair();
        let plan = FaultPlan::with_config(3, ChaosConfig {
            duplicate: 1000,
            ..quiet()
        });
        let mut t = plan.wrap(a, Role::Worker).unwrap();
        t.write_all(b"HELLO fleet/1 w\n").unwrap(); // request/reply: never duplicated
        t.write_all(b"RECORD 1 {}\n").unwrap(); // fire-and-forget: duplicated
        drop(t);
        let lines = read_all_lines(b, 3);
        assert_eq!(lines, vec!["HELLO fleet/1 w", "RECORD 1 {}", "RECORD 1 {}"]);
        // A worker's RECORD earns no extra reply (fire-and-forget).
        assert_eq!(plan.fault_count(), 1);
    }

    #[test]
    fn duplicated_decide_counts_an_owed_reply() {
        let (a, b) = pair();
        let plan = FaultPlan::with_config(3, ChaosConfig {
            duplicate: 1000,
            ..quiet()
        });
        let mut t = plan.wrap(a, Role::Client).unwrap();
        t.write_all(b"DECIDE 1 0:0:1:15\n").unwrap();
        assert_eq!(t.take_pending_dup_replies(), 1);
        assert_eq!(t.take_pending_dup_replies(), 0);
        drop(t);
        assert_eq!(
            read_all_lines(b, 2),
            vec!["DECIDE 1 0:0:1:15", "DECIDE 1 0:0:1:15"]
        );
    }

    #[test]
    fn heartbeats_reorder_behind_the_next_line() {
        let (a, b) = pair();
        let plan = FaultPlan::with_config(11, ChaosConfig {
            reorder: 1000,
            ..quiet()
        });
        let mut t = plan.wrap(a, Role::Worker).unwrap();
        t.write_all(b"HEARTBEAT 4\n").unwrap();
        t.write_all(b"RECORD 4 {}\n").unwrap();
        drop(t);
        assert_eq!(read_all_lines(b, 2), vec!["RECORD 4 {}", "HEARTBEAT 4"]);
        let kinds: Vec<_> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![
            FaultKind::HoldLine { bytes: 12 },
            FaultKind::FlushHeld { bytes: 12 },
        ]);
    }

    #[test]
    fn write_reset_tears_the_line_and_poisons_the_connection() {
        let (a, b) = pair();
        let config = ChaosConfig {
            reset: 1000,
            reset_window: 4,
            ..quiet()
        };
        // Find a seed whose first connection resets on the write side:
        // the draw order at wrap is fire?, offset, side.
        let plan = (0..64)
            .map(|seed| FaultPlan::with_config(seed, config))
            .find(|p| {
                let (x, _y) = pair();
                let t = p.wrap(x, Role::Worker).unwrap();
                let mut probe = t.try_clone().unwrap();
                probe.write_all(b"0123456789\n").is_err()
            })
            .expect("some seed resets on write");
        let fresh = FaultPlan::with_config(plan.seed(), config);
        let mut t = fresh.wrap(a, Role::Worker).unwrap();
        let err = t.write_all(b"0123456789\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Every later call errors identically.
        assert_eq!(
            t.write_all(b"x\n").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        let mut buf = [0u8; 8];
        assert_eq!(
            t.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        // The peer sees at most the torn prefix, then EOF.
        let lines = read_all_lines(b, 1);
        assert!(lines.is_empty(), "peer saw a complete line: {lines:?}");
    }

    #[test]
    fn polling_roles_stall_as_wouldblock_blocking_roles_sleep() {
        let plan = FaultPlan::with_config(5, ChaosConfig {
            stall: 1000,
            max_stall_ms: 1,
            ..quiet()
        });
        let mut buf = [0u8; 8];
        // Polling side: the stall surfaces as a synthetic WouldBlock.
        let (a, _b) = pair();
        let mut queen_side = plan.wrap(a, Role::Queen).unwrap();
        assert_eq!(
            queen_side.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        // Blocking side: the stall sleeps, then the real read proceeds.
        let (c, d) = pair();
        let mut w = FaultyTransport::direct(c);
        w.write_all(b"DONE 1\n").unwrap();
        let mut worker_side = plan.wrap(d, Role::Worker).unwrap();
        let n = worker_side.read(&mut buf).unwrap();
        assert!(n > 0);
        let events = plan.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::StallRead { synthetic: true, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::StallRead { synthetic: false, .. })));
    }

    #[test]
    fn same_seed_same_ops_same_faults() {
        let run = |seed: u64| {
            let plan = FaultPlan::with_config(seed, ChaosConfig {
                split_write: 300,
                duplicate: 300,
                reorder: 300,
                stall: 300,
                ..quiet()
            });
            let (a, b) = pair();
            let mut t = plan.wrap(a, Role::Worker).unwrap();
            for i in 0..20 {
                t.write_all(format!("RECORD {i} {{}}\n").as_bytes()).unwrap();
                t.write_all(format!("HEARTBEAT {i}\n").as_bytes()).unwrap();
            }
            drop(t);
            drop(b);
            plan.events()
        };
        let first = run(42);
        let second = run(42);
        assert_eq!(first, second);
        assert!(!first.is_empty(), "schedule injected nothing");
        assert_ne!(first, run(43));
    }
}
