//! The seeded fault schedule: configuration, per-fault event records,
//! and the [`FaultPlan`] factory that wraps sockets.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::transport::FaultyTransport;

/// Which side of which protocol a wrapped connection plays.
///
/// The role decides two things: which written lines are fair game for
/// duplication/reordering (only verbs the receiving side is idempotent
/// against), and how an injected read stall surfaces — the queen and
/// server poll their sockets with a short read timeout, so a stall is a
/// synthetic [`WouldBlock`](io::ErrorKind::WouldBlock) (exactly what a
/// peer silent past the poll timeout produces); the worker and client
/// block on reads, so a stall there is a real bounded sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The fleet queen's side of a worker connection (polling reads).
    Queen,
    /// A fleet worker's side of its queen connection (blocking reads;
    /// writes `RECORD`/`DONE`/`HEARTBEAT`, all dup-safe, and
    /// `HEARTBEAT` is reorder-safe).
    Worker,
    /// The serve server's side of a client connection (polling reads).
    Server,
    /// A serve client's side of its server connection (blocking reads;
    /// `DECIDE` is dup-safe — each duplicate earns an extra reply the
    /// client drains).
    Client,
}

impl Role {
    /// Whether injected read stalls surface as synthetic `WouldBlock`
    /// (polling sides) instead of a real sleep (blocking sides).
    pub(crate) fn synthetic_stall(self) -> bool {
        matches!(self, Role::Queen | Role::Server)
    }

    /// Whether a complete written line may be delivered twice. Only
    /// fire-and-forget verbs the peer is idempotent against qualify;
    /// request/reply verbs never do.
    pub(crate) fn duplicable(self, line: &[u8]) -> bool {
        match self {
            Role::Worker => {
                line.starts_with(b"RECORD ")
                    || line.starts_with(b"DONE ")
                    || line.starts_with(b"HEARTBEAT ")
            }
            Role::Client => line.starts_with(b"DECIDE "),
            Role::Queen | Role::Server => false,
        }
    }

    /// Whether a complete written line may be held back and delivered
    /// after the next line (reordering). Only heartbeats qualify: they
    /// are lossy by design, so a held one that never flushes is safe.
    pub(crate) fn reorderable(self, line: &[u8]) -> bool {
        matches!(self, Role::Worker) && line.starts_with(b"HEARTBEAT ")
    }

    /// Whether duplicating this line obliges the peer to send an extra
    /// reply the local side must drain (serve's strict request/reply).
    pub(crate) fn dup_earns_reply(self, line: &[u8]) -> bool {
        matches!(self, Role::Client) && line.starts_with(b"DECIDE ")
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Queen => "queen",
            Role::Worker => "worker",
            Role::Server => "server",
            Role::Client => "client",
        })
    }
}

/// Fault mix and intensities. Probabilities are per-mille (`0..=1000`)
/// so every draw is integer-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Per-mille chance a written buffer is torn into 2–4 chunks with a
    /// delay between each (exercises partial-line reads at the peer).
    pub split_write: u16,
    /// Upper bound on the delay between split-write chunks, microseconds.
    pub max_split_delay_us: u64,
    /// Per-mille chance a read call stalls (synthetic `WouldBlock` on
    /// polling roles, a real sleep on blocking roles).
    pub stall: u16,
    /// Upper bound on an injected stall, milliseconds.
    pub max_stall_ms: u64,
    /// Per-mille chance a connection carries a planned abrupt reset.
    pub reset: u16,
    /// The reset's byte offset is drawn from `0..reset_window`; offsets
    /// past what the connection ever transfers simply never fire.
    pub reset_window: u64,
    /// Per-mille chance a dup-safe complete line is delivered twice.
    pub duplicate: u16,
    /// Per-mille chance a reorder-safe line is held and delivered after
    /// the next written line.
    pub reorder: u16,
}

impl Default for ChaosConfig {
    /// A moderate mix: every fault class fires regularly on a run of a
    /// few hundred transport calls without drowning the run in resets.
    fn default() -> ChaosConfig {
        ChaosConfig {
            split_write: 150,
            max_split_delay_us: 500,
            stall: 60,
            max_stall_ms: 4,
            reset: 250,
            reset_window: 4096,
            duplicate: 100,
            reorder: 80,
        }
    }
}

/// What kind of fault was injected, with its magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A write was torn into `parts` chunks with delays between them.
    SplitWrite {
        /// Number of chunks the buffer went out as.
        parts: usize,
        /// Total bytes in the torn buffer.
        bytes: usize,
    },
    /// A read stalled.
    StallRead {
        /// Injected delay in milliseconds.
        ms: u64,
        /// `true` if surfaced as a synthetic `WouldBlock` (polling
        /// roles), `false` if a real sleep (blocking roles).
        synthetic: bool,
    },
    /// The connection was abruptly reset.
    Reset {
        /// Cumulative byte offset (in the tripping direction) the reset
        /// fired at.
        offset: u64,
        /// `true` if the write side tripped it (the line in flight was
        /// torn), `false` if the read side did.
        on_write: bool,
    },
    /// A dup-safe line was delivered twice.
    DuplicateLine {
        /// Length of the duplicated line.
        bytes: usize,
    },
    /// A reorder-safe line was held back.
    HoldLine {
        /// Length of the held line.
        bytes: usize,
    },
    /// A previously held line was delivered after a later line.
    FlushHeld {
        /// Length of the flushed line.
        bytes: usize,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SplitWrite { parts, bytes } => {
                write!(f, "split-write parts={parts} bytes={bytes}")
            }
            FaultKind::StallRead { ms, synthetic } => {
                write!(
                    f,
                    "stall-read ms={ms} mode={}",
                    if *synthetic { "wouldblock" } else { "sleep" }
                )
            }
            FaultKind::Reset { offset, on_write } => {
                write!(
                    f,
                    "reset offset={offset} side={}",
                    if *on_write { "write" } else { "read" }
                )
            }
            FaultKind::DuplicateLine { bytes } => write!(f, "duplicate-line bytes={bytes}"),
            FaultKind::HoldLine { bytes } => write!(f, "hold-line bytes={bytes}"),
            FaultKind::FlushHeld { bytes } => write!(f, "flush-held bytes={bytes}"),
        }
    }
}

/// One injected fault, addressed by its replay coordinate: the plan
/// seed, the connection's wrap order, and the op index (this
/// connection's transport-call counter) the fault fired at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The plan's base seed.
    pub seed: u64,
    /// Which connection (in plan wrap order, from 0).
    pub conn: u64,
    /// Which transport call on that connection (from 0).
    pub op: u64,
    /// The wrapped side's role.
    pub role: Role,
    /// What was injected.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} conn={} op={} role={} {}",
            self.seed, self.conn, self.op, self.role, self.kind
        )
    }
}

/// A seeded, shareable fault schedule.
///
/// One plan covers one chaos run: every socket wrapped through
/// [`wrap`](Self::wrap) gets the next connection index and its own RNG
/// stream derived from `(seed, conn)`, and all injected faults land in
/// one shared log (read it back with [`events`](Self::events) /
/// [`render_log`](Self::render_log)). Clones share the connection
/// counter and the log, so a queen and its in-process workers — or a
/// server and its load clients — can draw from one schedule.
#[derive(Clone)]
pub struct FaultPlan {
    seed: u64,
    config: ChaosConfig,
    next_conn: Arc<AtomicU64>,
    log: Arc<Mutex<Vec<FaultEvent>>>,
}

impl FaultPlan {
    /// A plan over the default fault mix.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan::with_config(seed, ChaosConfig::default())
    }

    /// A plan with an explicit fault mix.
    pub fn with_config(seed: u64, config: ChaosConfig) -> FaultPlan {
        FaultPlan {
            seed,
            config,
            next_conn: Arc::new(AtomicU64::new(0)),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The base seed every fault coordinate names.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault mix this plan injects.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// Wraps a connected socket in a fault-injecting transport playing
    /// `role`, assigning it the next connection index.
    ///
    /// # Errors
    ///
    /// Propagates `try_clone` failure on the underlying socket (the
    /// injector needs a second handle to shut it down on a reset).
    pub fn wrap(&self, stream: TcpStream, role: Role) -> io::Result<FaultyTransport> {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        FaultyTransport::chaos(
            stream,
            self.seed,
            conn,
            role,
            self.config,
            Arc::clone(&self.log),
        )
    }

    /// Every fault injected so far, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.log.lock().expect("chaos fault log").clone()
    }

    /// Number of faults injected so far.
    pub fn fault_count(&self) -> usize {
        self.log.lock().expect("chaos fault log").len()
    }

    /// The fault log as one line per event — what a failing soak seed
    /// dumps so the failure replays from its coordinates.
    pub fn render_log(&self) -> String {
        let log = self.log.lock().expect("chaos fault log");
        let mut out = String::new();
        for event in log.iter() {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("config", &self.config)
            .field("connections", &self.next_conn.load(Ordering::Relaxed))
            .field("faults", &self.log.lock().expect("chaos fault log").len())
            .finish()
    }
}
