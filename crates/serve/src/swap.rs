//! Lock-free hot swapping: a hand-rolled arc-swap cell.
//!
//! The serving read path must never take a lock — a `Mutex<Arc<T>>` would
//! serialise every batch behind every other batch *and* behind swaps. The
//! standard answer is the `arc-swap` crate; this environment is offline,
//! so [`SwapCell`] reimplements the slice of it the server needs:
//!
//! * [`load`](SwapCell::load) — wait-free on the reader side: one atomic
//!   pointer load (`Acquire`) plus one `Arc` refcount increment.
//! * [`store`](SwapCell::store) — publishes a new value with one atomic
//!   pointer swap (`AcqRel`); readers that raced ahead keep using the old
//!   value through their own `Arc` clone.
//!
//! The subtlety is reclamation: a reader may hold the raw pointer between
//! its `load` and its refcount increment while a writer swaps the pointer
//! out. Full arc-swap solves this with a deferred/hazard scheme; this cell
//! sidesteps it by **retiring** replaced boxes instead of freeing them —
//! a retired `Box<Arc<T>>` keeps one strong reference to the old payload,
//! so replaced values are freed only when the cell itself drops. Memory
//! overhead is therefore bounded by the number of swaps over the cell's
//! lifetime, which for a decision server is the number of checkpoint
//! promotions — a handful per process, never per request.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>` with lock-free reads.
///
/// See the [module docs](self) for the reclamation contract.
pub struct SwapCell<T> {
    ptr: AtomicPtr<Arc<T>>,
    /// Replaced boxes, freed at drop — never while a reader could still
    /// hold the raw pointer.
    retired: Mutex<Vec<*mut Arc<T>>>,
}

// SAFETY: the cell hands out `Arc<T>` clones and never gives out `&mut T`;
// all shared access to the payload goes through `Arc`, which requires
// `T: Send + Sync` for cross-thread sharing. The raw pointers are only
// dereferenced while the boxes they point to are alive (retired boxes are
// freed solely in `Drop`, which takes `&mut self` and therefore excludes
// concurrent readers).
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell currently holding `value`.
    pub fn new(value: Arc<T>) -> SwapCell<T> {
        SwapCell {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current value. Wait-free: one `Acquire` pointer load and one
    /// `Arc` clone; never blocks on writers.
    pub fn load(&self) -> Arc<T> {
        let ptr = self.ptr.load(Ordering::Acquire);
        // SAFETY: `ptr` came from `Box::into_raw` in `new` or `store` and
        // is freed only in `Drop` (`&mut self`), so it is valid here.
        unsafe { (*ptr).clone() }
    }

    /// Atomically replaces the value. Readers holding clones of the old
    /// value keep them; new loads see `value`.
    pub fn store(&self, value: Arc<T>) {
        let new = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(new, Ordering::AcqRel);
        self.retired.lock().expect("swap retire list").push(old);
    }

    /// Number of replaced values retired so far (diagnostics; bounds the
    /// cell's memory overhead).
    pub fn retired_count(&self) -> usize {
        self.retired.lock().expect("swap retire list").len()
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` excludes all readers; every pointer here was
        // leaked by `new`/`store` and is freed exactly once.
        unsafe {
            drop(Box::from_raw(self.ptr.load(Ordering::Acquire)));
            for ptr in self.retired.get_mut().expect("swap retire list").drain(..) {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_sees_the_latest_store() {
        let cell = SwapCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.retired_count(), 1);
    }

    #[test]
    fn readers_keep_their_clone_across_a_store() {
        let cell = SwapCell::new(Arc::new(String::from("old")));
        let held = cell.load();
        cell.store(Arc::new(String::from("new")));
        assert_eq!(*held, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn concurrent_loads_and_stores_never_tear() {
        // Each stored value is (n, n): a torn read would observe a
        // mismatched pair. Hammer from several reader threads while the
        // main thread swaps continuously.
        let cell = Arc::new(SwapCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let pair = cell.load();
                        assert_eq!(pair.0, pair.1, "torn read");
                    }
                });
            }
            for n in 1..=1000u64 {
                cell.store(Arc::new((n, n)));
            }
            stop.store(true, Ordering::Release);
        });
        assert_eq!(cell.retired_count(), 1000);
        let last = cell.load();
        assert_eq!(*last, (1000, 1000));
    }

    #[test]
    fn retired_payloads_free_when_the_cell_drops() {
        // The retired box pins the old payload (that is the reclamation
        // contract — a racing reader may still materialise a clone from
        // it); dropping the cell releases everything.
        let first = Arc::new(vec![0u8; 1024]);
        let weak = Arc::downgrade(&first);
        let cell = SwapCell::new(first);
        cell.store(Arc::new(vec![1u8; 1024]));
        assert!(weak.upgrade().is_some(), "retired payload freed too early");
        drop(cell);
        assert!(weak.upgrade().is_none(), "payload leaked past cell drop");
    }
}
