//! Load generation: N client threads hammer a server over loopback and
//! verify every response against local frozen dispatch.
//!
//! Each simulated-SoC client owns its own connection and its own
//! deterministic query stream (xorshift64*, seeded from the shared seed
//! plus the client index), batches queries like an engine flushing an
//! invocation window, and times each batch round-trip into a
//! [`LogHistogram`]. When the caller supplies the snapshots the server is
//! serving (by version), every returned mode is recomputed locally — a
//! mismatch means the server answered from a table it did not claim, the
//! exact torn-state failure hot-swap must never produce.

use std::collections::BTreeSet;
use std::io;
use std::time::{Duration, Instant};

use cohmeleon_chaos::FaultPlan;
use cohmeleon_core::frozen::{mask_modes, FrozenSnapshot};
use cohmeleon_core::{AccelInstanceId, AccelKindId, CoherenceMode};

use crate::client::ServeClient;
use crate::histogram::LogHistogram;
use crate::protocol::{Query, ToClient};

/// Under chaos, give up after this many consecutive failed attempts
/// with no progress (a connection that never yields a batch means the
/// server is gone, not merely faulty).
const MAX_CONSECUTIVE_FAILURES: usize = 64;

/// A mid-run snapshot swap the load run should trigger.
#[derive(Debug, Clone)]
pub struct SwapPlan {
    /// Server-side path of the snapshot to install.
    pub path: String,
    /// Client 0 issues the `SWAP` after completing this many batches.
    pub after_batches: usize,
}

/// What a load run should do.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Batches each client sends.
    pub batches: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Seed for the deterministic query streams.
    pub seed: u64,
    /// Instance ids are drawn from `0..instances`.
    pub instances: u16,
    /// Kind ids are drawn from `0..kinds` (1 in 4 queries goes out
    /// unregistered to exercise the catch-all route).
    pub kinds: u16,
    /// A swap to exercise mid-traffic, if any.
    pub swap: Option<SwapPlan>,
    /// The snapshots the server serves, indexed by `version - 1`. Every
    /// response whose version has an entry here is recomputed locally;
    /// responses without one are only counted (`unverified`).
    pub verify: Vec<FrozenSnapshot>,
    /// Seeded network fault injection: when set, every client connection
    /// is wrapped in a fault-injecting transport, and clients survive
    /// injected faults by reconnecting and retrying the interrupted
    /// batch — same queries, so the verified stream is unchanged. `None`
    /// is the plain direct path (any error aborts the run, as before).
    pub chaos: Option<FaultPlan>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 2,
            batches: 100,
            batch_size: 16,
            seed: 1,
            instances: 12,
            kinds: 4,
            swap: None,
            verify: Vec::new(),
            chaos: None,
        }
    }
}

/// What a load run did, merged over all clients.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Batches completed.
    pub batches: u64,
    /// Queries answered.
    pub decisions: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-batch round-trip latency.
    pub histogram: LogHistogram,
    /// Every table version that answered at least one batch.
    pub versions_seen: BTreeSet<u64>,
    /// Responses that disagreed with local dispatch on the table version
    /// the server claimed (must be 0).
    pub mismatches: u64,
    /// Responses whose claimed version had no snapshot to verify against.
    pub unverified: u64,
    /// Clean connection errors survived by reconnecting (always 0
    /// without fault injection).
    pub conn_errors: u64,
    /// Extra replies to chaos-duplicated `DECIDE` lines that were
    /// drained and verified like any other response.
    pub dup_replies: u64,
}

impl LoadReport {
    /// Answered queries per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.decisions as f64 / self.elapsed.as_secs_f64()
    }
}

/// The per-thread slice of a [`LoadReport`].
struct ClientReport {
    batches: u64,
    decisions: u64,
    histogram: LogHistogram,
    versions_seen: BTreeSet<u64>,
    mismatches: u64,
    unverified: u64,
    conn_errors: u64,
    dup_replies: u64,
}

fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn gen_query(rng: &mut u64, states: usize, options: &LoadOptions) -> Query {
    let r = xorshift64star(rng);
    let instance = (r % options.instances.max(1) as u64) as u16;
    let kind = if (r >> 16).is_multiple_of(4) {
        None
    } else {
        Some(((r >> 24) % options.kinds.max(1) as u64) as u16)
    };
    let state = ((r >> 32) % states.max(1) as u64) as u32;
    let mask = 1 + ((r >> 48) % 15) as u8;
    Query {
        instance,
        kind,
        state,
        mask,
    }
}

/// Recomputes one batch locally against the snapshot for `version`;
/// returns `(mismatches, unverified)` for it.
fn verify_batch(
    options: &LoadOptions,
    version: u64,
    queries: &[Query],
    modes: &[cohmeleon_core::CoherenceMode],
) -> (u64, u64) {
    let Some(snapshot) = (version as usize)
        .checked_sub(1)
        .and_then(|i| options.verify.get(i))
    else {
        return (0, queries.len() as u64);
    };
    let mut mismatches = 0;
    for (q, &got) in queries.iter().zip(modes) {
        let expected = snapshot.decide(
            AccelInstanceId(q.instance),
            q.kind.map(AccelKindId),
            q.state as usize,
            mask_modes(q.mask),
        );
        if expected != Some(got) {
            mismatches += 1;
        }
    }
    (mismatches, 0)
}

/// Verifies the extra replies a chaos transport's duplicated `DECIDE`
/// lines earned. A duplicate delivery must still never produce a wrong
/// answer: each extra `MODES` is decoded and recomputed against the
/// snapshot of the version *it* claims (a swap may land between the two
/// deliveries, so the versions can legitimately differ).
fn verify_dup_replies(
    options: &LoadOptions,
    queries: &[Query],
    extras: Vec<ToClient>,
    report: &mut ClientReport,
) {
    for reply in extras {
        let ToClient::Modes { version, modes } = reply else {
            continue;
        };
        report.dup_replies += 1;
        report.versions_seen.insert(version);
        if modes.len() != queries.len()
            || modes.iter().any(|&m| m as usize >= CoherenceMode::COUNT)
        {
            report.mismatches += 1;
            continue;
        }
        let decoded: Vec<CoherenceMode> = modes
            .iter()
            .map(|&m| CoherenceMode::from_index(m as usize))
            .collect();
        let (mismatches, unverified) = verify_batch(options, version, queries, &decoded);
        report.mismatches += mismatches;
        report.unverified += unverified;
    }
}

fn run_client(addr: &str, index: usize, options: &LoadOptions) -> io::Result<ClientReport> {
    let chaos = options.chaos.as_ref();
    let name = format!("loadgen-{index}");
    let mut report = ClientReport {
        batches: 0,
        decisions: 0,
        histogram: LogHistogram::new(),
        versions_seen: BTreeSet::new(),
        mismatches: 0,
        unverified: 0,
        conn_errors: 0,
        dup_replies: 0,
    };
    let mut rng = options
        .seed
        .wrapping_add(index as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        | 1;
    let mut client: Option<ServeClient> = None;
    let mut swapped = false;
    let mut failures = 0usize;
    // The current batch's queries survive reconnects: a batch is retried
    // with the *same* queries until verified, so the deterministic query
    // stream is identical whatever faults the schedule injects.
    let mut pending: Option<Vec<Query>> = None;
    let mut batch = 0;
    while batch < options.batches {
        // Any fault funnels here: without chaos it aborts the run (the
        // pre-chaos behavior); with chaos it is a clean connection error
        // — counted, reconnected, and the batch retried.
        macro_rules! survive {
            ($e:expr) => {{
                let e = $e;
                if chaos.is_none() {
                    return Err(e);
                }
                report.conn_errors += 1;
                failures += 1;
                if failures > MAX_CONSECUTIVE_FAILURES {
                    return Err(e);
                }
                client = None;
                continue;
            }};
        }
        let c = match &mut client {
            Some(c) => c,
            None => match ServeClient::connect_with(addr, &name, chaos) {
                Ok(c) => client.insert(c),
                Err(e) => survive!(e),
            },
        };
        if let Some(plan) = &options.swap {
            if index == 0 && batch == plan.after_batches && !swapped {
                match c.swap(&plan.path) {
                    Ok(_) => swapped = true,
                    Err(e) => survive!(e),
                }
            }
        }
        let states = c.states();
        let queries = pending.get_or_insert_with(|| {
            (0..options.batch_size)
                .map(|_| gen_query(&mut rng, states, options))
                .collect()
        });
        let sent = Instant::now();
        let (version, modes) = match c.decide_batch(queries) {
            Ok(reply) => reply,
            Err(e) => survive!(e),
        };
        report.histogram.record(sent.elapsed().as_nanos() as u64);
        report.batches += 1;
        report.decisions += modes.len() as u64;
        report.versions_seen.insert(version);
        let (mismatches, unverified) = verify_batch(options, version, queries, &modes);
        report.mismatches += mismatches;
        report.unverified += unverified;
        match c.drain_duplicate_replies() {
            Ok(extras) => verify_dup_replies(options, queries, extras, &mut report),
            Err(_) if chaos.is_some() => {
                // The duplicate's reply was lost to a fault after the
                // primary verified; the batch still counts.
                report.conn_errors += 1;
                client = None;
            }
            Err(e) => return Err(e),
        }
        pending = None;
        failures = 0;
        batch += 1;
    }
    Ok(report)
}

/// Runs `options.clients` concurrent clients against `addr` and merges
/// their reports.
///
/// # Errors
///
/// Without fault injection: the first client error encountered
/// (connection failure, transport error, `ERR` reply). With a chaos
/// plan: only an error that survives the consecutive-failure cap's
/// reconnect attempts — injected faults are absorbed and counted in
/// [`LoadReport::conn_errors`].
pub fn run_load(addr: &str, options: &LoadOptions) -> std::io::Result<LoadReport> {
    let start = Instant::now();
    let results: Vec<std::io::Result<ClientReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|index| scope.spawn(move || run_client(addr, index, options)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut report = LoadReport {
        batches: 0,
        decisions: 0,
        elapsed,
        histogram: LogHistogram::new(),
        versions_seen: BTreeSet::new(),
        mismatches: 0,
        unverified: 0,
        conn_errors: 0,
        dup_replies: 0,
    };
    for result in results {
        let client = result?;
        report.batches += client.batches;
        report.decisions += client.decisions;
        report.histogram.merge(&client.histogram);
        report.versions_seen.extend(client.versions_seen);
        report.mismatches += client.mismatches;
        report.unverified += client.unverified;
        report.conn_errors += client.conn_errors;
        report.dup_replies += client.dup_replies;
    }
    Ok(report)
}
