//! Online decision serving: frozen policy tables behind a batched
//! network API, hot-swappable without pausing traffic.
//!
//! The simulator trains and freezes Q-tables; deployment-shaped use wants
//! those decisions *served* — many SoC clients asking one process "which
//! coherence mode here?" at high rate, with the table promotable to a
//! newer checkpoint mid-traffic. This crate is that runtime, built like
//! the fleet on `std::net` alone:
//!
//! * [`protocol`] — the `serve/1` line protocol: `HELLO`, batched
//!   `DECIDE`, `SWAP`, `STAT`, `SHUTDOWN`.
//! * [`swap`] — [`SwapCell`]: a hand-rolled arc-swap so the read path
//!   never takes a lock.
//! * [`server`] — [`run_server`]: one handler thread per connection; each
//!   `DECIDE` batch is answered from exactly one table version.
//! * [`client`] — [`ServeClient`] plus [`RemotePolicy`], a [`Policy`]
//!   adapter proving a simulation can outsource its decide phase and stay
//!   bit-identical to local frozen dispatch.
//! * [`loadgen`] — [`run_load`]: N verifying clients with per-batch
//!   latency tracked in a [`LogHistogram`].
//! * [`histogram`] — log-bucket p50/p99/p999 without keeping samples.
//!
//! [`Policy`]: cohmeleon_core::Policy

#![warn(missing_docs)]

pub mod client;
pub mod histogram;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod swap;

pub use client::{RemotePolicy, ServeClient, ServerStat};
pub use histogram::LogHistogram;
pub use loadgen::{run_load, LoadOptions, LoadReport, SwapPlan};
pub use protocol::{Query, ToClient, ToServer, PROTOCOL_VERSION};
pub use server::{run_server, ServeOptions, ServerReport, TableVersion};
pub use swap::SwapCell;
