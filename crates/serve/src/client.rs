//! The client half: a blocking connection handle and a [`Policy`] adapter
//! that outsources decisions to a server.
//!
//! [`ServeClient`] is the low-level handle — connect, handshake, then one
//! request/one reply per call. [`RemotePolicy`] wraps a client so a whole
//! simulation can run with its decide phase served over the network: it
//! senses state exactly like
//! [`FrozenPolicy`](cohmeleon_core::FrozenPolicy) and ships the encoded
//! index in a single-query batch, so a run driven by it is bit-identical
//! to local frozen dispatch on the same table.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cohmeleon_chaos::{FaultPlan, FaultyTransport, Role};
use cohmeleon_core::frozen::mode_mask;
use cohmeleon_core::modes::{CoherenceMode, ModeSet};
use cohmeleon_core::snapshot::SystemSnapshot;
use cohmeleon_core::space::StateSpace;
use cohmeleon_core::state::State;
use cohmeleon_core::policy::PolicyComplexity;
use cohmeleon_core::{AccelInstanceId, AccelKindId, AgentScope, Decision, Policy};

use crate::protocol::{sanitize_name, LineReader, Query, ToClient, ToServer};

/// How long [`ServeClient::connect`] keeps retrying a refused connection
/// (the server may still be binding when clients launch).
const CONNECT_WINDOW: Duration = Duration::from_secs(10);

/// A blocking connection to a decision server.
///
/// One request, one reply; an `ERR` reply surfaces as
/// [`io::ErrorKind::InvalidData`]. After the handshake the server keeps
/// the connection open across `ERR`s, so the handle stays usable — the
/// offending request was consumed whole and framing is intact.
pub struct ServeClient {
    reader: LineReader<FaultyTransport>,
    writer: FaultyTransport,
    version: u64,
    scope: AgentScope,
    states: usize,
    tables: usize,
}

impl ServeClient {
    /// Connects to `addr`, retrying refused connections for a few
    /// seconds, and completes the `HELLO` handshake as `name`.
    ///
    /// # Errors
    ///
    /// Connection failure after the retry window, or a handshake that is
    /// not a well-formed server `HELLO`.
    pub fn connect(addr: &str, name: &str) -> io::Result<ServeClient> {
        ServeClient::connect_with(addr, name, None)
    }

    /// [`connect`](Self::connect) with optional seeded fault injection:
    /// when a plan is given the connection is wrapped in a
    /// [`FaultyTransport`] playing [`Role::Client`] before the
    /// handshake, so even the `HELLO` exchange runs under chaos.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect), plus injected faults (resets,
    /// stalls) surfacing as transport errors.
    pub fn connect_with(
        addr: &str,
        name: &str,
        chaos: Option<&FaultPlan>,
    ) -> io::Result<ServeClient> {
        // Retry in 20 ms slices capped at the remaining window (the same
        // slicing as the fleet worker's connect) so the window bounds
        // how long a client lingers instead of overshooting.
        let deadline = Instant::now() + CONNECT_WINDOW;
        let slice = Duration::from_millis(20);
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(slice.min(deadline - now));
                }
            }
        };
        stream.set_nodelay(true)?;
        let stream = FaultyTransport::from_plan(stream, chaos, Role::Client)?;
        let mut writer = stream.try_clone()?;
        let mut reader = LineReader::new(stream);
        let hello = ToServer::Hello {
            name: sanitize_name(name),
        };
        writer.write_all(format!("{}\n", hello.to_line()).as_bytes())?;
        let reply = read_reply(&mut reader)?;
        let ToClient::Hello {
            version,
            scope,
            states,
            tables,
        } = reply
        else {
            return Err(protocol_error(format!(
                "expected server HELLO, got `{}`",
                reply.to_line()
            )));
        };
        Ok(ServeClient {
            reader,
            writer,
            version,
            scope,
            states,
            tables,
        })
    }

    /// The table version the server last reported to this client.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The routing scope of the table live at handshake time.
    pub fn scope(&self) -> AgentScope {
        self.scope
    }

    /// The state cardinality queries must respect.
    pub fn states(&self) -> usize {
        self.states
    }

    /// The number of agent tables in the snapshot live at handshake time.
    pub fn tables(&self) -> usize {
        self.tables
    }

    fn request(&mut self, message: &ToServer) -> io::Result<ToClient> {
        // Replies to chaos-duplicated deliveries of an earlier DECIDE
        // arrive before this request's reply; drain any the caller has
        // not already consumed so request/reply framing stays aligned.
        self.drain_duplicate_replies()?;
        self.writer
            .write_all(format!("{}\n", message.to_line()).as_bytes())?;
        read_reply(&mut self.reader)
    }

    /// Reads (and returns) the extra replies the server owes this
    /// connection because a chaos transport duplicated request lines in
    /// flight. Without fault injection this is always empty. A caller
    /// that wants to *verify* duplicate deliveries calls this right
    /// after [`decide_batch`](Self::decide_batch); otherwise the next
    /// request drains leftovers silently.
    ///
    /// # Errors
    ///
    /// Transport failure or an unparseable reply line (`ERR` replies are
    /// returned as values here, not errors — a duplicated request may
    /// legitimately be re-rejected).
    pub fn drain_duplicate_replies(&mut self) -> io::Result<Vec<ToClient>> {
        let owed = self.writer.take_pending_dup_replies();
        let mut extra = Vec::with_capacity(owed);
        for _ in 0..owed {
            let line = self.reader.read_line()?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
            })?;
            extra.push(ToClient::parse(&line).map_err(protocol_error)?);
        }
        Ok(extra)
    }

    /// Sends one `DECIDE` batch; returns the table version that answered
    /// it and one mode per query, in query order.
    ///
    /// # Errors
    ///
    /// Transport failure, an `ERR` reply (invalid query), or a malformed
    /// response.
    pub fn decide_batch(&mut self, queries: &[Query]) -> io::Result<(u64, Vec<CoherenceMode>)> {
        let reply = self.request(&ToServer::Decide {
            queries: queries.to_vec(),
        })?;
        let ToClient::Modes { version, modes } = reply else {
            return Err(protocol_error(format!(
                "expected MODES, got `{}`",
                reply.to_line()
            )));
        };
        if modes.len() != queries.len() {
            return Err(protocol_error(format!(
                "sent {} queries, got {} modes",
                queries.len(),
                modes.len()
            )));
        }
        let modes = modes
            .iter()
            .map(|&m| {
                if (m as usize) < CoherenceMode::COUNT {
                    Ok(CoherenceMode::from_index(m as usize))
                } else {
                    Err(protocol_error(format!("mode index {m} out of range")))
                }
            })
            .collect::<io::Result<Vec<_>>>()?;
        self.version = version;
        Ok((version, modes))
    }

    /// Asks the server to install the snapshot at `path` (a server-side
    /// filesystem path); returns the new version, scope and table count.
    ///
    /// # Errors
    ///
    /// Transport failure or an `ERR` reply (the old table stays live).
    pub fn swap(&mut self, path: &str) -> io::Result<(u64, AgentScope, usize)> {
        let reply = self.request(&ToServer::Swap { path: path.into() })?;
        let ToClient::Swapped {
            version,
            scope,
            tables,
        } = reply
        else {
            return Err(protocol_error(format!(
                "expected SWAPPED, got `{}`",
                reply.to_line()
            )));
        };
        self.version = version;
        Ok((version, scope, tables))
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed response.
    pub fn stat(&mut self) -> io::Result<ServerStat> {
        let reply = self.request(&ToServer::Stat)?;
        let ToClient::Stat {
            version,
            decisions,
            batches,
            swaps,
            clients,
            errors,
        } = reply
        else {
            return Err(protocol_error(format!(
                "expected STAT, got `{}`",
                reply.to_line()
            )));
        };
        Ok(ServerStat {
            version,
            decisions,
            batches,
            swaps,
            clients,
            errors,
        })
    }

    /// Asks the server to stop once its connections drain.
    ///
    /// # Errors
    ///
    /// Transport failure or a reply other than `BYE`.
    pub fn shutdown(mut self) -> io::Result<()> {
        let reply = self.request(&ToServer::Shutdown)?;
        match reply {
            ToClient::Bye => Ok(()),
            other => Err(protocol_error(format!(
                "expected BYE, got `{}`",
                other.to_line()
            ))),
        }
    }
}

/// One `STAT` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStat {
    /// The live table version.
    pub version: u64,
    /// Total queries answered.
    pub decisions: u64,
    /// Total `DECIDE` batches answered.
    pub batches: u64,
    /// Snapshots installed after the initial one.
    pub swaps: u64,
    /// Clients ever accepted.
    pub clients: u64,
    /// `ERR` replies sent (rejected requests and failed swaps).
    pub errors: u64,
}

fn read_reply(reader: &mut LineReader<FaultyTransport>) -> io::Result<ToClient> {
    let line = reader
        .read_line()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"))?;
    let reply = ToClient::parse(&line).map_err(protocol_error)?;
    if let ToClient::Err { message } = reply {
        return Err(protocol_error(format!("server rejected request: {message}")));
    }
    Ok(reply)
}

fn protocol_error(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// A [`Policy`] whose decide phase is served remotely.
///
/// Senses and encodes exactly like
/// [`FrozenPolicy`](cohmeleon_core::FrozenPolicy) — `State::from_snapshot`
/// then [`StateSpace::encode_sensed`] — and ships the encoded index in a
/// one-query `DECIDE` batch. On a server holding the same frozen snapshot
/// the returned mode is bit-identical to local dispatch, so a whole
/// simulation driven by this policy reproduces the local run exactly
/// (pinned by the `remote_policy` integration test).
///
/// # Panics
///
/// The [`Policy`] trait has no fallible decide, so a transport failure
/// mid-simulation panics with the underlying error. Engines that need to
/// survive a dead server must check connectivity before starting a run.
pub struct RemotePolicy {
    client: ServeClient,
    space: Box<dyn StateSpace>,
    kind_of: Vec<Option<AccelKindId>>,
}

impl RemotePolicy {
    /// Wraps a connected client with the state space the server's table
    /// was trained in.
    ///
    /// # Panics
    ///
    /// If `space`'s cardinality differs from the server's advertised
    /// state count — queries would be systematically out of range.
    pub fn new(client: ServeClient, space: Box<dyn StateSpace>) -> RemotePolicy {
        assert_eq!(
            space.cardinality(),
            client.states(),
            "state space cardinality must match the server's state count"
        );
        RemotePolicy {
            client,
            space,
            kind_of: Vec::new(),
        }
    }

    /// The wrapped connection (e.g. to issue `STAT` or `SHUTDOWN` after a
    /// run).
    pub fn into_client(self) -> ServeClient {
        self.client
    }

    fn kind_of(&self, instance: AccelInstanceId) -> Option<AccelKindId> {
        self.kind_of.get(instance.0 as usize).copied().flatten()
    }
}

impl Policy for RemotePolicy {
    fn name(&self) -> String {
        "remote".to_owned()
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        accel: AccelInstanceId,
    ) -> Decision {
        assert!(
            !available.is_empty(),
            "policy invoked with an empty set of available coherence modes"
        );
        let state = State::from_snapshot(snapshot);
        let state_index = self.space.encode_sensed(snapshot, &state);
        let query = Query {
            instance: accel.0,
            kind: self.kind_of(accel).map(|k| k.0),
            state: state_index as u32,
            mask: mode_mask(available),
        };
        let (_version, modes) = self
            .client
            .decide_batch(&[query])
            .expect("remote decide failed");
        Decision {
            mode: modes[0],
            state,
            state_index,
        }
    }

    fn complexity(&self) -> PolicyComplexity {
        // Must match `FrozenPolicy` so engine overhead accounting is
        // identical between local and remote dispatch.
        PolicyComplexity::Heuristic
    }

    fn bind_topology(&mut self, topology: &[(AccelInstanceId, AccelKindId)]) {
        for &(instance, kind) in topology {
            let i = instance.0 as usize;
            if i >= self.kind_of.len() {
                self.kind_of.resize(i + 1, None);
            }
            self.kind_of[i] = Some(kind);
        }
    }
}
