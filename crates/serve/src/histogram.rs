//! A hand-rolled log-bucket latency histogram.
//!
//! Serving tail latency (p99/p999) cannot be tracked by keeping every
//! sample (millions per second) nor by a plain mean (tails vanish). The
//! standard answer is HDR-style logarithmic bucketing; offline, so this
//! is the minimal reimplementation: values 0–7 ns get exact buckets, and
//! every octave above that is split into 4 linear sub-buckets, giving a
//! worst-case quantile error of ~25% of the value — more than enough to
//! tell a 2 µs p99 from a 200 µs one — in 256 fixed `u64` counters.
//! Recording is branch-light and allocation-free; merging is element-wise
//! addition, so per-thread histograms combine losslessly.

use std::fmt;

/// Buckets: indices 0..8 are exact (value = index); above that, octave
/// `o` (values `2^o..2^(o+1)`) maps to indices `4o..4o+4`.
const BUCKETS: usize = 256;

/// A fixed-size logarithmic histogram of `u64` samples (nanoseconds, by
/// serving convention).
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

fn bucket_of(value: u64) -> usize {
    if value < 8 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize; // >= 3
    let sub = ((value >> (octave - 2)) & 3) as usize;
    octave * 4 + sub
}

/// The lower bound of a bucket's value range (the quantile estimate
/// reported for samples in it).
fn bucket_floor(index: usize) -> u64 {
    if index < 8 {
        return index as u64;
    }
    let octave = index / 4;
    let sub = (index % 4) as u64;
    (1u64 << octave) + (sub << (octave - 2))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest sample recorded exactly (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at percentile `p` (0–100): the floor of the bucket
    /// containing the `ceil(p% · count)`-th smallest sample, clamped to
    /// the exact maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(index).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Adds every sample of `other` into `self` (lossless: buckets are
    /// element-wise added).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// One JSON object line (`label`, `count`, `p50`…`max` in ns) — the
    /// artifact format the CI smoke uploads.
    pub fn to_json(&self, label: &str) -> String {
        format!(
            r#"{{"label": "{}", "count": {}, "p50_ns": {}, "p99_ns": {}, "p999_ns": {}, "max_ns": {}}}"#,
            label,
            self.count,
            self.p50(),
            self.p99(),
            self.p999(),
            self.max
        )
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_in_range() {
        let mut prev = 0;
        for value in (0..64).map(|s| 1u64 << s).chain(0..4096) {
            let b = bucket_of(value);
            assert!(b < BUCKETS, "value {value} → bucket {b}");
            assert!(bucket_floor(b) <= value, "floor above value {value}");
            let _ = prev;
            prev = b;
        }
        // Monotone over an exhaustive small range.
        for value in 1..100_000u64 {
            assert!(bucket_of(value) >= bucket_of(value - 1), "at {value}");
        }
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.p50(), 2);
    }

    #[test]
    fn quantile_error_is_bounded() {
        // A uniform spread: each quantile estimate must be within one
        // sub-bucket (≤ 25%) of the true value.
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, truth) in [(50.0, 50_000u64), (99.0, 99_000), (99.9, 99_900)] {
            let got = h.percentile(p);
            let err = (got as f64 - truth as f64).abs() / truth as f64;
            assert!(err <= 0.25, "p{p}: got {got}, truth {truth}");
        }
        assert_eq!(h.max(), 100_000);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in 0..1000u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 17 % 4096);
            all.record(v * 17 % 4096);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn json_line_has_the_artifact_fields() {
        let mut h = LogHistogram::new();
        h.record(1000);
        let line = h.to_json("serve");
        for field in ["\"label\"", "\"count\"", "\"p50_ns\"", "\"p99_ns\"", "\"p999_ns\"", "\"max_ns\""] {
            assert!(line.contains(field), "{line}");
        }
    }
}
