//! The serving wire protocol: line-delimited text over TCP.
//!
//! One message per `\n`-terminated line, ASCII verbs, space-separated
//! fields. A decision query is one colon-joined token
//! `inst:kind:state:mask` (`kind` is a numeric accelerator-kind id or `-`
//! for unregistered), so a `DECIDE` line carries an arbitrary batch of
//! queries and the reply is one mode index per query — the batched
//! request API the ROADMAP's serving item calls for.
//!
//! | direction | line | meaning |
//! |---|---|---|
//! | client → server | `HELLO serve/1 <name>` | join; `<name>` is a label for reporting |
//! | server → client | `HELLO serve/1 <version> <scope> <states> <tables>` | table version, routing scope, state cardinality, table count |
//! | client → server | `DECIDE <n> <q1> … <qn>` | batch of `n` queries `inst:kind:state:mask` |
//! | server → client | `MODES <version> <m1> … <mn>` | one mode index per query, all answered from table `<version>` |
//! | client → server | `SWAP <path>` | load a new snapshot from `<path>` and flip atomically |
//! | server → client | `SWAPPED <version> <scope> <tables>` | the new live version |
//! | client → server | `STAT` | ask for server counters |
//! | server → client | `STAT <version> <decisions> <batches> <swaps> <clients> <errors>` | current counters |
//! | client → server | `SHUTDOWN` | stop the server once connections drain |
//! | server → client | `BYE` | shutdown acknowledged |
//! | server → client | `ERR <message>` | request rejected; the connection stays open |
//!
//! Every query in one `DECIDE` batch is answered from exactly one table
//! version — the server resolves its live snapshot pointer once per
//! batch, and `MODES` names the version used, so a client can attribute
//! every response to one table even while `SWAP`s land mid-traffic.
//! After the handshake, every rejection — unknown verb, malformed or
//! oversized (> [`MAX_BATCH`]) batch, out-of-range query, failed swap —
//! is answered with `ERR` and counted, and the connection stays usable:
//! line framing is intact (the offending line was fully consumed), so
//! one bad request never costs a client its connection. Only a broken
//! *handshake* (anything before a valid client `HELLO`) closes the
//! connection. Other connections are never affected either way.

use std::fmt;
use std::io::{self, Read};

use cohmeleon_core::router::AgentScope;

/// The protocol version token both `HELLO`s must carry.
pub const PROTOCOL_VERSION: &str = "serve/1";

/// The most queries one `DECIDE` line may carry. A cap keeps one client
/// from making the server buffer and answer an unbounded batch; an
/// oversized batch is rejected with `ERR` (the connection stays open).
pub const MAX_BATCH: usize = 1024;

fn bad(line: &str, why: &str) -> String {
    format!("bad serve message `{line}`: {why}")
}

/// Replaces whitespace in a client name so it stays a single token on the
/// wire.
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect()
}

/// One decision query: which instance is invoking, its registered kind
/// (if any), the encoded state index, and the 4-bit availability mask of
/// the modes its tile supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// The invoking accelerator instance id.
    pub instance: u16,
    /// The instance's registered kind id, `None` if unregistered
    /// (per-kind routing then falls back to the global catch-all).
    pub kind: Option<u16>,
    /// The encoded state index (must be below the snapshot's state
    /// cardinality).
    pub state: u32,
    /// Availability mask: bit *i* set ⇔ mode index *i* supported. Must be
    /// non-zero and within the low 4 bits.
    pub mask: u8,
}

impl Query {
    /// Serialises the query as its wire token `inst:kind:state:mask`.
    pub fn to_token(self) -> String {
        match self.kind {
            Some(kind) => format!("{}:{}:{}:{}", self.instance, kind, self.state, self.mask),
            None => format!("{}:-:{}:{}", self.instance, self.state, self.mask),
        }
    }

    /// Parses a wire token produced by [`to_token`](Self::to_token).
    ///
    /// # Errors
    ///
    /// A message naming the token and what is wrong with it (wrong field
    /// count, non-numeric field, empty or out-of-range mask).
    pub fn parse_token(token: &str) -> Result<Query, String> {
        let fields: Vec<&str> = token.split(':').collect();
        let [instance, kind, state, mask] = fields.as_slice() else {
            return Err(format!("bad query `{token}`: expected inst:kind:state:mask"));
        };
        let instance: u16 = instance
            .parse()
            .map_err(|_| format!("bad query `{token}`: non-numeric instance"))?;
        let kind = match *kind {
            "-" => None,
            k => Some(
                k.parse::<u16>()
                    .map_err(|_| format!("bad query `{token}`: non-numeric kind"))?,
            ),
        };
        let state: u32 = state
            .parse()
            .map_err(|_| format!("bad query `{token}`: non-numeric state"))?;
        let mask: u8 = mask
            .parse()
            .map_err(|_| format!("bad query `{token}`: non-numeric mask"))?;
        if mask == 0 || mask > 0b1111 {
            return Err(format!("bad query `{token}`: mask must be in 1..=15"));
        }
        Ok(Query {
            instance,
            kind,
            state,
            mask,
        })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_token())
    }
}

/// A message a client sends to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToServer {
    /// `HELLO serve/1 <name>` — join.
    Hello {
        /// The client's self-reported label.
        name: String,
    },
    /// `DECIDE <n> <q1> … <qn>` — a batch of decision queries.
    Decide {
        /// The queries, in order; the reply carries one mode per query.
        queries: Vec<Query>,
    },
    /// `SWAP <path>` — load and atomically install a new snapshot.
    Swap {
        /// Filesystem path of the snapshot, server-side.
        path: String,
    },
    /// `STAT` — ask for server counters.
    Stat,
    /// `SHUTDOWN` — stop the server once connections drain.
    Shutdown,
}

impl ToServer {
    /// Serialises the message as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            ToServer::Hello { name } => format!("HELLO {PROTOCOL_VERSION} {name}"),
            ToServer::Decide { queries } => {
                let mut line = format!("DECIDE {}", queries.len());
                for q in queries {
                    line.push(' ');
                    line.push_str(&q.to_token());
                }
                line
            }
            ToServer::Swap { path } => format!("SWAP {path}"),
            ToServer::Stat => "STAT".into(),
            ToServer::Shutdown => "SHUTDOWN".into(),
        }
    }

    /// Parses a wire line.
    ///
    /// # Errors
    ///
    /// A message naming the line and what is wrong with it (unknown verb,
    /// version mismatch, malformed query, count mismatch).
    pub fn parse(line: &str) -> Result<ToServer, String> {
        let verb = line.split(' ').next().unwrap_or("");
        match verb {
            "HELLO" => {
                let mut parts = line.splitn(3, ' ');
                parts.next(); // verb
                let version = parts.next().ok_or_else(|| bad(line, "missing version"))?;
                if version != PROTOCOL_VERSION {
                    return Err(bad(
                        line,
                        &format!("version `{version}` (server speaks {PROTOCOL_VERSION})"),
                    ));
                }
                let name = parts.next().ok_or_else(|| bad(line, "missing name"))?;
                Ok(ToServer::Hello { name: name.into() })
            }
            "DECIDE" => {
                let mut parts = line.split(' ');
                parts.next(); // verb
                let n: usize = parts
                    .next()
                    .ok_or_else(|| bad(line, "missing count"))?
                    .parse()
                    .map_err(|_| bad(line, "non-numeric count"))?;
                if n > MAX_BATCH {
                    return Err(bad(
                        line,
                        &format!("batch of {n} exceeds the {MAX_BATCH}-query cap"),
                    ));
                }
                let queries: Vec<Query> = parts
                    .map(Query::parse_token)
                    .collect::<Result<_, _>>()
                    .map_err(|e| bad(line, &e))?;
                if queries.len() != n {
                    return Err(bad(
                        line,
                        &format!("count says {n} queries, line has {}", queries.len()),
                    ));
                }
                if queries.is_empty() {
                    return Err(bad(line, "empty batch"));
                }
                Ok(ToServer::Decide { queries })
            }
            "SWAP" => {
                let path = line
                    .split_once(' ')
                    .map(|(_, p)| p)
                    .filter(|p| !p.is_empty())
                    .ok_or_else(|| bad(line, "missing path"))?;
                Ok(ToServer::Swap { path: path.into() })
            }
            "STAT" => Ok(ToServer::Stat),
            "SHUTDOWN" => Ok(ToServer::Shutdown),
            _ => Err(bad(line, "unknown verb")),
        }
    }
}

/// A message the server sends to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToClient {
    /// `HELLO serve/1 <version> <scope> <states> <tables>` — the reply to
    /// a client's `HELLO`: which table version is live, its routing
    /// scope, the state cardinality queries must respect, and how many
    /// agent tables it holds.
    Hello {
        /// The live table version (monotonic, starts at 1).
        version: u64,
        /// The live snapshot's routing scope.
        scope: AgentScope,
        /// State cardinality; query `state` fields must be below it.
        states: usize,
        /// Number of agent tables in the live snapshot.
        tables: usize,
    },
    /// `MODES <version> <m1> … <mn>` — the decisions for one batch, all
    /// answered from table `<version>`.
    Modes {
        /// The single table version this whole batch was answered from.
        version: u64,
        /// One coherence-mode index per query, in query order.
        modes: Vec<u8>,
    },
    /// `SWAPPED <version> <scope> <tables>` — a new snapshot is live.
    Swapped {
        /// The new live version.
        version: u64,
        /// The new snapshot's routing scope.
        scope: AgentScope,
        /// Number of agent tables in the new snapshot.
        tables: usize,
    },
    /// `STAT <version> <decisions> <batches> <swaps> <clients> <errors>`
    /// — server counters.
    Stat {
        /// The live table version.
        version: u64,
        /// Total queries answered.
        decisions: u64,
        /// Total `DECIDE` batches answered.
        batches: u64,
        /// Total snapshots installed after the initial one.
        swaps: u64,
        /// Total clients ever accepted.
        clients: u64,
        /// Total `ERR` replies sent (rejected requests and failed swaps).
        errors: u64,
    },
    /// `ERR <message>` — request rejected; the connection stays open
    /// (only a broken handshake closes it).
    Err {
        /// Human-readable reason.
        message: String,
    },
    /// `BYE` — shutdown acknowledged.
    Bye,
}

impl ToClient {
    /// Serialises the message as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            ToClient::Hello {
                version,
                scope,
                states,
                tables,
            } => format!("HELLO {PROTOCOL_VERSION} {version} {scope} {states} {tables}"),
            ToClient::Modes { version, modes } => {
                let mut line = format!("MODES {version}");
                for m in modes {
                    line.push(' ');
                    line.push_str(&m.to_string());
                }
                line
            }
            ToClient::Swapped {
                version,
                scope,
                tables,
            } => format!("SWAPPED {version} {scope} {tables}"),
            ToClient::Stat {
                version,
                decisions,
                batches,
                swaps,
                clients,
                errors,
            } => format!("STAT {version} {decisions} {batches} {swaps} {clients} {errors}"),
            ToClient::Err { message } => format!("ERR {message}"),
            ToClient::Bye => "BYE".into(),
        }
    }

    /// Parses a wire line.
    ///
    /// # Errors
    ///
    /// As for [`ToServer::parse`].
    pub fn parse(line: &str) -> Result<ToClient, String> {
        let verb = line.split(' ').next().unwrap_or("");
        match verb {
            "HELLO" => {
                let mut parts = line.split(' ');
                parts.next(); // verb
                let version = parts.next().ok_or_else(|| bad(line, "missing version"))?;
                if version != PROTOCOL_VERSION {
                    return Err(bad(
                        line,
                        &format!("version `{version}` (client speaks {PROTOCOL_VERSION})"),
                    ));
                }
                Ok(ToClient::Hello {
                    version: parse_u64(line, parts.next())?,
                    scope: parse_scope(line, parts.next())?,
                    states: parse_u64(line, parts.next())? as usize,
                    tables: parse_u64(line, parts.next())? as usize,
                })
            }
            "MODES" => {
                let mut parts = line.split(' ');
                parts.next(); // verb
                let version = parse_u64(line, parts.next())?;
                let modes: Vec<u8> = parts
                    .map(|m| m.parse::<u8>().map_err(|_| bad(line, "non-numeric mode")))
                    .collect::<Result<_, _>>()?;
                Ok(ToClient::Modes { version, modes })
            }
            "SWAPPED" => {
                let mut parts = line.split(' ');
                parts.next(); // verb
                Ok(ToClient::Swapped {
                    version: parse_u64(line, parts.next())?,
                    scope: parse_scope(line, parts.next())?,
                    tables: parse_u64(line, parts.next())? as usize,
                })
            }
            "STAT" => {
                let mut parts = line.split(' ');
                parts.next(); // verb
                Ok(ToClient::Stat {
                    version: parse_u64(line, parts.next())?,
                    decisions: parse_u64(line, parts.next())?,
                    batches: parse_u64(line, parts.next())?,
                    swaps: parse_u64(line, parts.next())?,
                    clients: parse_u64(line, parts.next())?,
                    errors: parse_u64(line, parts.next())?,
                })
            }
            "ERR" => {
                let message = line.split_once(' ').map_or("", |(_, m)| m).to_owned();
                Ok(ToClient::Err { message })
            }
            "BYE" => Ok(ToClient::Bye),
            _ => Err(bad(line, "unknown verb")),
        }
    }
}

fn parse_u64(line: &str, field: Option<&str>) -> Result<u64, String> {
    field
        .ok_or_else(|| bad(line, "missing field"))?
        .parse::<u64>()
        .map_err(|_| bad(line, "non-numeric field"))
}

fn parse_scope(line: &str, field: Option<&str>) -> Result<AgentScope, String> {
    field
        .ok_or_else(|| bad(line, "missing scope"))?
        .parse::<AgentScope>()
        .map_err(|e| bad(line, &format!("{e}")))
}

/// Timeout-safe line framing over any [`Read`] — the same discipline as
/// the fleet's reader: `BufReader::read_line` cannot be used on a socket
/// with a read timeout (its UTF-8 guard discards partial bytes on `Err`),
/// so this reader keeps partial data buffered across
/// [`WouldBlock`](io::ErrorKind::WouldBlock)/[`TimedOut`](io::ErrorKind::TimedOut)
/// and resumes each line exactly where it left off.
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> LineReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> LineReader<R> {
        LineReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// Reads the next `\n`-terminated line, without the newline (a
    /// trailing `\r` is also stripped). `Ok(None)` is end-of-stream; any
    /// unterminated bytes at EOF are a torn line from a dying peer and
    /// are dropped.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error. On
    /// [`WouldBlock`](io::ErrorKind::WouldBlock)/[`TimedOut`](io::ErrorKind::TimedOut)
    /// the partial line stays buffered; call again to continue it.
    pub fn read_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let line = String::from_utf8(line).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 serve message")
                })?;
                return Ok(Some(line));
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_tokens_round_trip() {
        let queries = [
            Query {
                instance: 3,
                kind: Some(1),
                state: 42,
                mask: 15,
            },
            Query {
                instance: 0,
                kind: None,
                state: 0,
                mask: 1,
            },
            Query {
                instance: 65535,
                kind: Some(65535),
                state: 2186,
                mask: 9,
            },
        ];
        for q in queries {
            assert_eq!(Query::parse_token(&q.to_token()).unwrap(), q);
        }
    }

    #[test]
    fn query_rejects_garbage() {
        assert!(Query::parse_token("1:2:3").is_err());
        assert!(Query::parse_token("x:2:3:4").is_err());
        assert!(Query::parse_token("1:y:3:4").is_err());
        assert!(Query::parse_token("1:2:z:4").is_err());
        assert!(Query::parse_token("1:2:3:0").is_err()); // empty mask
        assert!(Query::parse_token("1:2:3:16").is_err()); // beyond 4 bits
    }

    #[test]
    fn to_server_round_trips() {
        let messages = [
            ToServer::Hello {
                name: "soc-client-2".into(),
            },
            ToServer::Decide {
                queries: vec![
                    Query {
                        instance: 0,
                        kind: Some(0),
                        state: 7,
                        mask: 15,
                    },
                    Query {
                        instance: 9,
                        kind: None,
                        state: 242,
                        mask: 5,
                    },
                ],
            },
            ToServer::Swap {
                path: "snapshots/cohmeleon suite.tsv".into(),
            },
            ToServer::Stat,
            ToServer::Shutdown,
        ];
        for message in messages {
            assert_eq!(ToServer::parse(&message.to_line()).unwrap(), message);
        }
    }

    #[test]
    fn to_client_round_trips() {
        let messages = [
            ToClient::Hello {
                version: 1,
                scope: AgentScope::PerKind,
                states: 243,
                tables: 3,
            },
            ToClient::Modes {
                version: 2,
                modes: vec![0, 3, 1],
            },
            ToClient::Swapped {
                version: 2,
                scope: AgentScope::Global,
                tables: 1,
            },
            ToClient::Stat {
                version: 2,
                decisions: 1000,
                batches: 10,
                swaps: 1,
                clients: 4,
                errors: 2,
            },
            ToClient::Err {
                message: "state 999 out of range".into(),
            },
            ToClient::Bye,
        ];
        for message in messages {
            assert_eq!(ToClient::parse(&message.to_line()).unwrap(), message);
        }
    }

    #[test]
    fn decide_count_must_match() {
        assert!(ToServer::parse("DECIDE 2 1:0:5:15").is_err());
        assert!(ToServer::parse("DECIDE 0").is_err());
        assert!(ToServer::parse("DECIDE x 1:0:5:15").is_err());
    }

    #[test]
    fn decide_rejects_oversized_batches_by_claimed_count() {
        let line = format!("DECIDE {} 1:0:5:15", MAX_BATCH + 1);
        let why = ToServer::parse(&line).unwrap_err();
        assert!(why.contains("exceeds"), "unexpected error: {why}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ToServer::parse("NOPE").is_err());
        assert!(ToServer::parse("HELLO serve/0 x").is_err());
        assert!(ToServer::parse("SWAP").is_err());
        assert!(ToClient::parse("MODES 1 x").is_err());
        assert!(ToClient::parse("HELLO serve/1 1 per-socket 243 1").is_err());
    }

    /// A reader that yields its scripted results one at a time.
    struct Scripted(Vec<io::Result<Vec<u8>>>);

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            match self.0.remove(0) {
                Ok(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn line_reader_keeps_partial_lines_across_timeouts() {
        let timeout = || io::Error::new(io::ErrorKind::WouldBlock, "timed out");
        let mut reader = LineReader::new(Scripted(vec![
            Ok(b"DEC".to_vec()),
            Err(timeout()),
            Ok(b"IDE 1 0:0:1:15\nST".to_vec()),
            Err(timeout()),
            Ok(b"AT\n".to_vec()),
        ]));
        assert_eq!(
            reader.read_line().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(reader.read_line().unwrap().unwrap(), "DECIDE 1 0:0:1:15");
        assert_eq!(
            reader.read_line().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(reader.read_line().unwrap().unwrap(), "STAT");
        assert_eq!(reader.read_line().unwrap(), None);
    }

    #[test]
    fn line_reader_drops_torn_tail_at_eof() {
        let mut reader = LineReader::new(Scripted(vec![Ok(b"STAT\nDECIDE 1 0:".to_vec())]));
        assert_eq!(reader.read_line().unwrap().unwrap(), "STAT");
        assert_eq!(reader.read_line().unwrap(), None);
    }
}
