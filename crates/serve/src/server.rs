//! The decision server: concurrent clients, a lock-free read path, and
//! atomic snapshot hot-swap.
//!
//! Mirrors the fleet queen's shape — a non-blocking accept loop inside
//! `std::thread::scope`, one handler thread per connection polling with a
//! short read timeout — but the shared state is deliberately different:
//! where the queen funnels every message through one mutex, the server's
//! hot path touches **no lock at all**. The live table is an
//! `Arc<TableVersion>` behind a [`SwapCell`]; a `DECIDE` handler loads it
//! once per batch (so the whole batch is answered from exactly one
//! version, which the `MODES` reply names) and answers every query with
//! two indexed loads into the frozen snapshot. Counters are relaxed
//! atomics; only `SWAP` — a rare administrative verb — takes a mutex, and
//! only against other swaps.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cohmeleon_chaos::{FaultPlan, FaultyTransport, Role};
use cohmeleon_core::frozen::{mask_modes, FrozenSnapshot};
use cohmeleon_core::{AccelInstanceId, AccelKindId};

use crate::protocol::{LineReader, Query, ToClient, ToServer};
use crate::swap::SwapCell;

/// One installed snapshot with its monotonic version number.
pub struct TableVersion {
    /// The version (1 for the initial table, +1 per successful `SWAP`).
    pub version: u64,
    /// The immutable decision store.
    pub snapshot: FrozenSnapshot,
}

/// Tuning knobs for [`run_server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Handler read timeout — how quickly a handler notices shutdown
    /// under a silent peer.
    pub read_timeout: Duration,
    /// Seeded network fault injection: when set, every accepted client
    /// connection is wrapped in a [`FaultyTransport`] playing
    /// [`Role::Server`]. `None` is the plain direct path.
    pub chaos: Option<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_millis(200),
            chaos: None,
        }
    }
}

/// What a server run did.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Total queries answered.
    pub decisions: u64,
    /// Total `DECIDE` batches answered.
    pub batches: u64,
    /// Snapshots installed after the initial one.
    pub swaps: u64,
    /// Clients accepted over the server's lifetime.
    pub clients: u64,
    /// `ERR` replies sent (rejected requests and failed swaps).
    pub errors: u64,
    /// The live table version at shutdown.
    pub final_version: u64,
}

/// State shared by every handler thread.
struct Shared {
    live: SwapCell<TableVersion>,
    /// Serialises swaps against each other (never against readers).
    swap_lock: Mutex<()>,
    /// Every snapshot ever installed must cover this many states; query
    /// validation happens against it before dispatch.
    states: usize,
    decisions: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    clients: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
}

/// Serves decisions from `initial` on `listener` until a client sends
/// `SHUTDOWN` and every connection drains.
///
/// Every `SWAP`-installed snapshot must cover the same state cardinality
/// as `initial` (clients encode against a fixed state space); its scope
/// may differ. A failed swap (unreadable file, parse error) leaves the
/// live table untouched and answers `ERR`.
///
/// # Errors
///
/// Setup failures (non-blocking mode) and accept-loop I/O errors. Per-
/// connection errors close that connection only.
pub fn run_server(
    listener: TcpListener,
    initial: FrozenSnapshot,
    options: &ServeOptions,
) -> io::Result<ServerReport> {
    let shared = Shared {
        states: initial.states(),
        live: SwapCell::new(Arc::new(TableVersion {
            version: 1,
            snapshot: initial,
        })),
        swap_lock: Mutex::new(()),
        decisions: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        swaps: AtomicU64::new(0),
        clients: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    };

    listener.set_nonblocking(true)?;
    let active = AtomicUsize::new(0);
    let mut accept_error: Option<io::Error> = None;
    std::thread::scope(|scope| {
        loop {
            if shared.shutdown.load(Ordering::Acquire) && active.load(Ordering::Acquire) == 0 {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.clients.fetch_add(1, Ordering::Relaxed);
                    active.fetch_add(1, Ordering::AcqRel);
                    let shared = &shared;
                    let active = &active;
                    let options = options.clone();
                    scope.spawn(move || {
                        serve_client(stream, shared, &options);
                        active.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    accept_error = Some(e);
                    shared.shutdown.store(true, Ordering::Release);
                }
            }
        }
    });
    if let Some(e) = accept_error {
        return Err(e);
    }

    Ok(ServerReport {
        decisions: shared.decisions.load(Ordering::Relaxed),
        batches: shared.batches.load(Ordering::Relaxed),
        swaps: shared.swaps.load(Ordering::Relaxed),
        clients: shared.clients.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        final_version: shared.live.load().version,
    })
}

fn send(writer: &mut FaultyTransport, message: &ToClient) -> io::Result<()> {
    writer.write_all(format!("{}\n", message.to_line()).as_bytes())
}

/// Sends `ERR <why>` and counts it. The caller decides whether the
/// connection survives: after the handshake it always does (the bad line
/// was fully consumed, so framing is intact); before it, it closes.
fn reject(shared: &Shared, writer: &mut FaultyTransport, why: String) {
    shared.errors.fetch_add(1, Ordering::Relaxed);
    let _ = send(writer, &ToClient::Err { message: why });
}

/// One client connection, handled on its own thread until the client
/// leaves, breaks the handshake, or shutdown lands. After the handshake
/// a rejected request (`ERR`) leaves the connection usable; all other
/// failure modes converge on closing this socket. The server and its
/// other connections are unaffected either way.
fn serve_client(stream: TcpStream, shared: &Shared, options: &ServeOptions) {
    let _ = stream.set_nodelay(true);
    let Ok(stream) = FaultyTransport::from_plan(stream, options.chaos.as_ref(), Role::Server)
    else {
        return;
    };
    if stream.set_read_timeout(Some(options.read_timeout)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(stream);
    let mut greeted = false;

    loop {
        let line = match reader.read_line() {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let message = match ToServer::parse(&line) {
            Ok(message) => message,
            Err(why) => {
                // Unknown verb / malformed line: the line was consumed
                // whole, so mid-session the connection stays usable.
                reject(shared, &mut writer, why);
                if greeted {
                    continue;
                }
                return;
            }
        };
        if !greeted {
            let ToServer::Hello { .. } = message else {
                reject(shared, &mut writer, format!("expected HELLO, got `{line}`"));
                return;
            };
            let live = shared.live.load();
            let hello = ToClient::Hello {
                version: live.version,
                scope: live.snapshot.scope(),
                states: live.snapshot.states(),
                tables: live.snapshot.num_tables(),
            };
            if send(&mut writer, &hello).is_err() {
                return;
            }
            greeted = true;
            continue;
        }
        match message {
            ToServer::Hello { .. } => {
                reject(shared, &mut writer, "unexpected mid-session HELLO".into());
            }
            ToServer::Decide { queries } => {
                // One load for the whole batch: every query is answered
                // from exactly this version, torn-free by construction.
                let live = shared.live.load();
                match decide_batch(&live.snapshot, shared.states, &queries) {
                    Ok(modes) => {
                        shared
                            .decisions
                            .fetch_add(modes.len() as u64, Ordering::Relaxed);
                        shared.batches.fetch_add(1, Ordering::Relaxed);
                        let reply = ToClient::Modes {
                            version: live.version,
                            modes,
                        };
                        if send(&mut writer, &reply).is_err() {
                            return;
                        }
                    }
                    Err(why) => {
                        // A bad query rejects the batch, not the client.
                        reject(shared, &mut writer, why);
                    }
                }
            }
            ToServer::Swap { path } => match install_snapshot(shared, &path) {
                Ok((version, scope, tables)) => {
                    let reply = ToClient::Swapped {
                        version,
                        scope,
                        tables,
                    };
                    if send(&mut writer, &reply).is_err() {
                        return;
                    }
                }
                Err(why) => {
                    // A failed swap is not a protocol violation: the old
                    // table stays live and the client may retry.
                    reject(shared, &mut writer, why);
                }
            },
            ToServer::Stat => {
                let reply = ToClient::Stat {
                    version: shared.live.load().version,
                    decisions: shared.decisions.load(Ordering::Relaxed),
                    batches: shared.batches.load(Ordering::Relaxed),
                    swaps: shared.swaps.load(Ordering::Relaxed),
                    clients: shared.clients.load(Ordering::Relaxed),
                    errors: shared.errors.load(Ordering::Relaxed),
                };
                if send(&mut writer, &reply).is_err() {
                    return;
                }
            }
            ToServer::Shutdown => {
                let _ = send(&mut writer, &ToClient::Bye);
                shared.shutdown.store(true, Ordering::Release);
                return;
            }
        }
    }
}

/// Answers one batch from one snapshot. Every query is validated before
/// dispatch so a bad query cannot panic the handler.
fn decide_batch(
    snapshot: &FrozenSnapshot,
    states: usize,
    queries: &[Query],
) -> Result<Vec<u8>, String> {
    let mut modes = Vec::with_capacity(queries.len());
    for q in queries {
        if q.state as usize >= states {
            return Err(format!(
                "query `{q}`: state {} out of range (snapshot covers {states})",
                q.state
            ));
        }
        let available = mask_modes(q.mask);
        let mode = snapshot
            .decide(
                AccelInstanceId(q.instance),
                q.kind.map(AccelKindId),
                q.state as usize,
                available,
            )
            .ok_or_else(|| format!("query `{q}`: empty availability mask"))?;
        modes.push(mode.index() as u8);
    }
    Ok(modes)
}

/// Loads, parses and atomically installs a new snapshot. Serialised
/// against other swaps; readers are never blocked.
fn install_snapshot(
    shared: &Shared,
    path: &str,
) -> Result<(u64, cohmeleon_core::AgentScope, usize), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("swap: cannot read `{path}`: {e}"))?;
    let snapshot = FrozenSnapshot::parse(&text, shared.states)
        .map_err(|e| format!("swap: `{path}`: {e}"))?;
    let scope = snapshot.scope();
    let tables = snapshot.num_tables();
    let _guard = shared.swap_lock.lock().expect("swap lock");
    let version = shared.live.load().version + 1;
    shared
        .live
        .store(Arc::new(TableVersion { version, snapshot }));
    shared.swaps.fetch_add(1, Ordering::Relaxed);
    Ok((version, scope, tables))
}
