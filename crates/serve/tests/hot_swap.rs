//! Hot-swap under live traffic: zero lost requests, zero torn reads.
//!
//! Verifying load-generator clients hammer the server while one of them
//! installs a second snapshot mid-run. Every response names the table
//! version that produced it, and the load generator recomputes every
//! single decision locally against that exact version — so one decision
//! computed from a half-visible table, or attributed to the wrong
//! version, fails the run. Also covers the ugly-peer cases: a client that
//! dies mid-line, a client that sends garbage, and a swap pointing at a
//! bad file (the old table must stay live).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use cohmeleon_core::FrozenSnapshot;
use cohmeleon_serve::{
    run_load, run_server, LoadOptions, Query, ServeClient, ServeOptions, ServerReport, SwapPlan,
};

const STATES: usize = 27;

/// A deterministic q-table document whose argmax landscape depends on
/// `salt` (same construction as the core frozen-layer tests).
fn synthetic_snapshot_text(states: usize, salt: usize) -> String {
    let mut text = String::from("# synthetic serve-test table\n# cohmeleon q-table v1\n");
    for s in 0..states {
        let v = |a: usize| ((s * 31 + a * 7 + salt) % 13) as f64 - 6.0;
        text.push_str(&format!(
            "{s}\t{}\t{}\t{}\t{}\n",
            v(0),
            v(1),
            v(2),
            v(3)
        ));
    }
    text
}

fn temp_snapshot(tag: &str, salt: usize) -> (PathBuf, FrozenSnapshot) {
    let text = synthetic_snapshot_text(STATES, salt);
    let snapshot = FrozenSnapshot::parse(&text, STATES).expect("synthetic table parses");
    let path = std::env::temp_dir().join(format!(
        "cohmeleon-serve-hotswap-{}-{tag}.tsv",
        std::process::id()
    ));
    std::fs::write(&path, text).expect("write temp snapshot");
    (path, snapshot)
}

fn spawn_server(
    snapshot: FrozenSnapshot,
) -> (String, std::thread::JoinHandle<std::io::Result<ServerReport>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle =
        std::thread::spawn(move || run_server(listener, snapshot, &ServeOptions::default()));
    (addr, handle)
}

#[test]
fn hot_swap_under_concurrent_load_loses_nothing() {
    let (_path_a, snap_a) = temp_snapshot("initial", 0);
    let (path_b, snap_b) = temp_snapshot("swapped", 5);
    let (addr, server) = spawn_server(snap_a.clone());

    let options = LoadOptions {
        clients: 4,
        batches: 120,
        batch_size: 8,
        seed: 42,
        swap: Some(SwapPlan {
            path: path_b.to_string_lossy().into_owned(),
            after_batches: 30,
        }),
        verify: vec![snap_a, snap_b],
        ..LoadOptions::default()
    };
    let report = run_load(&addr, &options).expect("load run");

    // Zero lost requests: every batch every client sent was answered.
    assert_eq!(report.batches, 4 * 120);
    assert_eq!(report.decisions, 4 * 120 * 8);
    // Zero torn state: every response matched local dispatch on the
    // version the server claimed, and every version was verifiable.
    assert_eq!(report.mismatches, 0, "server served torn/foreign state");
    assert_eq!(report.unverified, 0, "server claimed an unknown version");
    // The swap really happened mid-traffic: both versions answered load.
    let versions: Vec<u64> = report.versions_seen.iter().copied().collect();
    assert_eq!(versions, vec![1, 2], "expected traffic on both versions");

    let mut admin = ServeClient::connect(&addr, "admin").expect("connect");
    let stat = admin.stat().expect("stat");
    assert_eq!(stat.swaps, 1);
    assert_eq!(stat.version, 2);
    assert!(stat.decisions >= report.decisions);
    admin.shutdown().expect("shutdown");

    let server_report = server.join().expect("server thread").expect("server ran");
    assert_eq!(server_report.swaps, 1);
    assert_eq!(server_report.final_version, 2);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn failed_swap_keeps_the_old_table_live() {
    let (path_a, snap_a) = temp_snapshot("only", 3);
    let (addr, server) = spawn_server(snap_a.clone());

    let mut client = ServeClient::connect(&addr, "swapper").expect("connect");
    let query = Query {
        instance: 1,
        kind: None,
        state: 4,
        mask: 0b1011,
    };
    let (v1, before) = client.decide_batch(&[query]).expect("decide before");
    assert_eq!(v1, 1);

    // Missing file: rejected, connection stays usable.
    let err = client.swap("/nonexistent/cohmeleon-snapshot.tsv");
    assert!(err.is_err(), "swap of a missing file must fail");
    // Unparseable file: rejected too.
    let garbage = std::env::temp_dir().join(format!(
        "cohmeleon-serve-hotswap-{}-garbage.tsv",
        std::process::id()
    ));
    std::fs::write(&garbage, "not a table\n").expect("write garbage");
    assert!(client.swap(&garbage.to_string_lossy()).is_err());

    let (v_after, after) = client.decide_batch(&[query]).expect("decide after");
    assert_eq!(v_after, 1, "failed swaps must not bump the version");
    assert_eq!(before, after, "failed swaps must not change decisions");

    client.shutdown().expect("shutdown");
    let report = server.join().expect("server thread").expect("server ran");
    assert_eq!(report.swaps, 0);
    assert_eq!(report.errors, 2, "both failed swaps must be counted");
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&garbage);
}

#[test]
fn torn_connections_and_garbage_do_not_kill_the_server() {
    let (path_a, snap_a) = temp_snapshot("robust", 1);
    let (addr, server) = spawn_server(snap_a.clone());

    // A peer that dies mid-line: greet, then send a torn DECIDE prefix
    // with no newline and vanish.
    {
        let mut torn = TcpStream::connect(&addr).expect("connect raw");
        torn.write_all(b"HELLO serve/1 torn-peer\n").expect("hello");
        let mut reader = BufReader::new(torn.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("server hello");
        assert!(line.starts_with("HELLO serve/1 "), "got `{line}`");
        torn.write_all(b"DECIDE 1 0:-:").expect("torn prefix");
        // Dropped here: the server must treat the tail as torn and move on.
    }

    // A peer that sends garbage mid-session: gets ERR, and because the
    // bad line was consumed whole the connection stays usable.
    {
        let mut rude = TcpStream::connect(&addr).expect("connect raw");
        rude.write_all(b"HELLO serve/1 rude-peer\n").expect("hello");
        let mut reader = BufReader::new(rude.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("server hello");
        rude.write_all(b"EXPLODE now\n").expect("garbage");
        line.clear();
        reader.read_line(&mut line).expect("err line");
        assert!(line.starts_with("ERR "), "got `{line}`");
        rude.write_all(b"STAT\n").expect("stat after err");
        line.clear();
        reader.read_line(&mut line).expect("stat line");
        assert!(
            line.starts_with("STAT "),
            "connection must stay usable after ERR, got `{line}`"
        );
    }

    // A peer that skips the handshake entirely.
    {
        let mut silent = TcpStream::connect(&addr).expect("connect raw");
        silent.write_all(b"STAT\n").expect("premature stat");
        let mut reader = BufReader::new(silent.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("err line");
        assert!(line.starts_with("ERR "), "got `{line}`");
    }

    // After all that abuse, a well-behaved client still gets service.
    let mut client = ServeClient::connect(&addr, "polite").expect("connect");
    let (version, modes) = client
        .decide_batch(&[Query {
            instance: 0,
            kind: None,
            state: 0,
            mask: 0b1111,
        }])
        .expect("decide after abuse");
    assert_eq!(version, 1);
    assert_eq!(modes.len(), 1);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server ran");
    let _ = std::fs::remove_file(&path_a);
}
