//! The `ERR` path in anger: every rejection a live server can issue must
//! leave the connection usable and land in the `STAT` error counter.
//!
//! The serve protocol's recovery contract is framing-based: a rejected
//! request was consumed as one complete line, so nothing about the
//! stream is ambiguous and the client may simply continue. This test
//! walks one connection through every mid-session rejection — an
//! oversized `DECIDE` batch, an unknown verb, a swap pointing at a
//! missing file, a swap pointing at a corrupt file, an out-of-range
//! query — and demands service afterwards each time, then checks the
//! server counted every one of them.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use cohmeleon_core::FrozenSnapshot;
use cohmeleon_serve::protocol::MAX_BATCH;
use cohmeleon_serve::{run_server, Query, ServeClient, ServeOptions, ServerReport};

const STATES: usize = 27;

fn synthetic_snapshot_text(states: usize, salt: usize) -> String {
    let mut text = String::from("# synthetic serve-test table\n# cohmeleon q-table v1\n");
    for s in 0..states {
        let v = |a: usize| ((s * 31 + a * 7 + salt) % 13) as f64 - 6.0;
        text.push_str(&format!("{s}\t{}\t{}\t{}\t{}\n", v(0), v(1), v(2), v(3)));
    }
    text
}

fn spawn_server(
    snapshot: FrozenSnapshot,
) -> (String, std::thread::JoinHandle<std::io::Result<ServerReport>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle =
        std::thread::spawn(move || run_server(listener, snapshot, &ServeOptions::default()));
    (addr, handle)
}

/// One scripted exchange on a raw socket: send `line`, expect a reply
/// with the given prefix, and return it.
fn exchange(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(!reply.is_empty(), "server closed on `{line}`");
    reply.trim_end().to_string()
}

#[test]
fn every_mid_session_rejection_leaves_the_connection_usable() {
    let text = synthetic_snapshot_text(STATES, 2);
    let snapshot = FrozenSnapshot::parse(&text, STATES).expect("synthetic table parses");
    let (addr, server) = spawn_server(snapshot);

    let corrupt = std::env::temp_dir().join(format!(
        "cohmeleon-serve-errpaths-{}-corrupt.tsv",
        std::process::id()
    ));
    std::fs::write(&corrupt, "q-table v1 but the rows are lies\n").expect("write corrupt");

    // Raw socket so the exact wire traffic is under test.
    let mut stream = TcpStream::connect(&addr).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let hello = exchange(&mut stream, &mut reader, "HELLO serve/1 err-prober");
    assert!(hello.starts_with("HELLO serve/1 "), "got `{hello}`");

    // A valid decide first, as the usability baseline.
    let ok = exchange(&mut stream, &mut reader, "DECIDE 1 0:-:1:15");
    assert!(ok.starts_with("MODES 1 "), "got `{ok}`");

    let mut expected_errors = 0u64;
    let rejections: &[(String, &str)] = &[
        // Oversized batch by claimed count: rejected before any queries
        // are even parsed, so no amount of payload can wedge the server.
        (
            format!("DECIDE {} 0:-:1:15", MAX_BATCH + 1),
            "exceeds",
        ),
        // Unknown verb mid-stream.
        ("EXPLODE now".to_string(), "unknown"),
        // Batch with an out-of-range query: the batch is rejected, the
        // client is not.
        (format!("DECIDE 1 0:-:{STATES}:15"), "out of range"),
        // Swap to a file that does not exist.
        (
            "SWAP /nonexistent/cohmeleon-errpaths.tsv".to_string(),
            "cannot read",
        ),
        // Swap to a file that exists but does not parse.
        (format!("SWAP {}", corrupt.display()), ""),
        // Mid-session HELLO.
        ("HELLO serve/1 again".to_string(), "mid-session"),
    ];
    for (line, needle) in rejections {
        let reply = exchange(&mut stream, &mut reader, line);
        assert!(reply.starts_with("ERR "), "`{line}` got `{reply}`");
        assert!(
            reply.contains(needle),
            "`{line}` got `{reply}`, expected it to mention `{needle}`"
        );
        expected_errors += 1;
        // The connection answers real work immediately after each ERR.
        let after = exchange(&mut stream, &mut reader, "DECIDE 1 0:-:1:15");
        assert!(after.starts_with("MODES 1 "), "after `{line}` got `{after}`");
    }

    // The failed swaps must not have bumped the version.
    let stat = exchange(&mut stream, &mut reader, "STAT");
    let fields: Vec<&str> = stat.split_whitespace().collect();
    assert_eq!(fields.first(), Some(&"STAT"), "got `{stat}`");
    assert_eq!(fields.get(1), Some(&"1"), "failed swaps bumped the version");
    assert_eq!(
        fields.get(6).and_then(|v| v.parse::<u64>().ok()),
        Some(expected_errors),
        "STAT errors field disagrees: `{stat}`"
    );
    drop(stream);
    drop(reader);

    // The typed client agrees with the raw wire, and a rejected swap
    // surfaces as Err without poisoning the client.
    let mut client = ServeClient::connect(&addr, "typed").expect("connect");
    assert!(client.swap("/nonexistent/cohmeleon-errpaths.tsv").is_err());
    let (version, modes) = client
        .decide_batch(&[Query {
            instance: 0,
            kind: None,
            state: 1,
            mask: 0b1111,
        }])
        .expect("decide after failed swap");
    assert_eq!(version, 1);
    assert_eq!(modes.len(), 1);
    let stat = client.stat().expect("stat");
    assert_eq!(stat.errors, expected_errors + 1);
    assert_eq!(stat.swaps, 0);
    client.shutdown().expect("shutdown");

    let report = server.join().expect("server thread").expect("server ran");
    assert_eq!(report.errors, expected_errors + 1);
    assert_eq!(report.swaps, 0);
    assert_eq!(report.final_version, 1);
    let _ = std::fs::remove_file(&corrupt);
}

/// A pre-handshake rejection is the one case that still closes: there is
/// no session to keep usable.
#[test]
fn pre_handshake_rejection_closes_the_connection() {
    let text = synthetic_snapshot_text(STATES, 4);
    let snapshot = FrozenSnapshot::parse(&text, STATES).expect("synthetic table parses");
    let (addr, server) = spawn_server(snapshot);

    let mut stream = TcpStream::connect(&addr).expect("connect raw");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let reply = exchange(&mut stream, &mut reader, "STAT");
    assert!(reply.starts_with("ERR "), "got `{reply}`");
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("eof");
    assert_eq!(n, 0, "pre-handshake ERR must close, got `{line}`");
    drop(stream);

    let client = ServeClient::connect(&addr, "closer").expect("connect");
    client.shutdown().expect("shutdown");
    let report = server.join().expect("server thread").expect("server ran");
    assert_eq!(report.errors, 1);
}
