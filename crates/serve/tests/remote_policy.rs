//! Remote dispatch equals local dispatch, bit for bit.
//!
//! Trains a real softmax-composed router on a quick protocol run, freezes
//! it to the persisted router-tables document, then runs the *same*
//! evaluation twice: once with a local [`FrozenPolicy`] and once with a
//! [`RemotePolicy`] whose every decision travels through a live server
//! over loopback. The two [`AppResult::structural_hash`]es must be
//! identical — the serving layer adds latency, never different decisions.
//! (Softmax exploration is required: a frozen epsilon-greedy agent still
//! tie-breaks randomly, so only argmax-pure compositions freeze to a
//! deterministic table.)

use std::net::TcpListener;
use std::sync::Arc;

use cohmeleon_core::explore::Softmax;
use cohmeleon_core::space::{StateSpace, Table3Space};
use cohmeleon_core::{AgentBuilder, AgentScope, FrozenPolicy, FrozenSnapshot, Policy};
use cohmeleon_serve::{
    run_server, Query, RemotePolicy, ServeClient, ServeOptions, ServerReport,
};
use cohmeleon_soc::config::soc1;
use cohmeleon_workloads::{evaluate_policy, generate_app, run_protocol, GeneratorParams};

const TRAIN_ITERATIONS: usize = 2;
const SEED: u64 = 7;

/// Trains a per-kind softmax router and returns its frozen export.
fn trained_snapshot() -> FrozenSnapshot {
    let config = soc1();
    let params = GeneratorParams {
        phases: 2,
        threads: (2, 4),
        ..GeneratorParams::default()
    };
    let train_app = generate_app(&config, &params, 11);
    let test_app = generate_app(&config, &params, 22);
    let mut router = AgentBuilder::paper(TRAIN_ITERATIONS, SEED)
        .exploration(Softmax::default_schedule(TRAIN_ITERATIONS))
        .scope(AgentScope::PerKind)
        .build_routed();
    run_protocol(
        &config,
        &train_app,
        &test_app,
        &mut router,
        TRAIN_ITERATIONS,
        SEED,
    );
    let text = router.export_table().expect("router exports tables");
    FrozenSnapshot::parse(&text, Table3Space.cardinality()).expect("frozen export parses")
}

/// Runs `run_server` on an OS-assigned loopback port; returns the address
/// and the join handle.
fn spawn_server(
    snapshot: FrozenSnapshot,
) -> (String, std::thread::JoinHandle<std::io::Result<ServerReport>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle =
        std::thread::spawn(move || run_server(listener, snapshot, &ServeOptions::default()));
    (addr, handle)
}

#[test]
fn remote_dispatch_is_bit_identical_to_local() {
    let snapshot = trained_snapshot();
    let config = soc1();
    let app = generate_app(&config, &GeneratorParams::default(), 33);

    let mut local = FrozenPolicy::table3(Arc::new(snapshot.clone()));
    let local_result = evaluate_policy(&config, &app, &mut local, SEED);

    let (addr, server) = spawn_server(snapshot);
    let client = ServeClient::connect(&addr, "remote-policy-test").expect("connect");
    assert_eq!(client.states(), 243);
    assert_eq!(client.scope(), AgentScope::PerKind);
    let mut remote = RemotePolicy::new(client, Box::new(Table3Space));
    let remote_result = evaluate_policy(&config, &app, &mut remote, SEED);

    assert_eq!(
        local_result.structural_hash(),
        remote_result.structural_hash(),
        "remote dispatch diverged from local frozen dispatch"
    );

    let client = remote.into_client();
    client.shutdown().expect("shutdown");
    let report = server.join().expect("server thread").expect("server ran");
    assert!(report.decisions > 0, "server answered no queries");
    assert_eq!(report.swaps, 0);
}

#[test]
fn batched_queries_equal_single_queries() {
    let snapshot = trained_snapshot();
    let states = snapshot.states();
    let (addr, server) = spawn_server(snapshot);

    let mut client = ServeClient::connect(&addr, "batch-equivalence").expect("connect");
    let mut queries = Vec::new();
    for i in 0..64u64 {
        queries.push(Query {
            instance: (i % 5) as u16,
            kind: if i % 4 == 0 { None } else { Some((i % 3) as u16) },
            state: (i.wrapping_mul(97) % states as u64) as u32,
            mask: 1 + (i % 15) as u8,
        });
    }

    let (batch_version, batched) = client.decide_batch(&queries).expect("batched decide");
    let mut singles = Vec::new();
    for &q in &queries {
        let (version, modes) = client.decide_batch(&[q]).expect("single decide");
        assert_eq!(version, batch_version, "no swap happened in this test");
        singles.push(modes[0]);
    }
    assert_eq!(batched, singles, "batching changed decisions");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server ran");
}
