//! Checkpointed sweeps: interrupt a grid run, resume it, shard it — and
//! end with the exact bytes a clean serial run would have written.
//!
//! The experiment layer persists one JSONL `CellRecord` per completed
//! cell (fsynced, so a kill loses at most the line in flight). Resuming
//! loads the checkpoint with a corruption-tolerant tail scan, skips the
//! recorded cells, and — once complete — finalises the file in canonical
//! order. Sharding deals cells round-robin by stable dense index and
//! merges the slices back, verified cell-complete. Every path converges
//! on the same byte stream.
//!
//! Run with: `cargo run --release --example resumable_sweep`

use cohmeleon_repro::exp::{
    canonical_jsonl, merge_records, CellRecord, Experiment, PolicyKind, Serial, ShardSpec,
    SweepGrid,
};
use cohmeleon_repro::soc::config::soc1;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};

fn build_grid(checkpoint: &std::path::Path) -> SweepGrid {
    let config = soc1();
    let app = generate_app(&config, &GeneratorParams::quick(), 31);
    Experiment::evaluate(config, app)
        .policy_kinds([PolicyKind::FixedNonCoh, PolicyKind::Manual, PolicyKind::Cohmeleon])
        .seeds([1, 2])
        .resume_from(checkpoint)
        .build()
        .expect("experiment axes are non-empty")
}

fn main() {
    let dir = std::env::temp_dir().join("cohmeleon-resumable-sweep-example");
    std::fs::create_dir_all(&dir).expect("create example dir");
    let checkpoint = dir.join("sweep.jsonl");
    let _ = std::fs::remove_file(&checkpoint);

    let grid = build_grid(&checkpoint);
    let path = grid.resume_path().expect("checkpoint path configured");

    // --- 1. A run that "dies" after 2 of 6 cells -------------------------
    let partial = grid
        .run_resumable_capped(path, &Serial, 2)
        .expect("capped run");
    println!(
        "interrupted run: {} cells on disk, complete = {}",
        partial.ran, partial.complete
    );

    // --- 2. Resume: only the missing 4 cells simulate --------------------
    let resumed = grid.run_resumable(path, &Serial).expect("resumed run");
    println!(
        "resumed run:     reused {}, ran {}, complete = {}",
        resumed.reused, resumed.ran, resumed.complete
    );

    // --- 3. The same grid, as 3 in-process shards, merged ----------------
    // (The `sweep` binary does this across real worker processes; the
    // partition/merge algebra is identical.)
    let batches: Vec<Vec<CellRecord>> = (0..3)
        .map(|i| grid.collect_shard_records(ShardSpec::new(i, 3), &Serial))
        .collect();
    println!(
        "3 shards:        {:?} cells per shard",
        batches.iter().map(Vec::len).collect::<Vec<_>>()
    );
    let merged = merge_records(batches, Some(&grid)).expect("shards merge completely");

    // --- 4. All three paths produced the same bytes ----------------------
    let checkpoint_bytes = std::fs::read_to_string(path).expect("read checkpoint");
    assert_eq!(canonical_jsonl(&resumed.records), checkpoint_bytes);
    assert_eq!(canonical_jsonl(&merged), checkpoint_bytes);
    println!(
        "interrupted+resumed, sharded+merged and the on-disk checkpoint all \
         agree: {} cells, {} bytes",
        merged.len(),
        checkpoint_bytes.len()
    );

    std::fs::remove_file(path).expect("clean up checkpoint");
}
