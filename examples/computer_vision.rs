//! The SoC6 case study: a computer-vision classification pipeline.
//!
//! SoC6 hosts three copies of the night-vision → autoencoder → MLP
//! pipeline (undarken, denoise, classify). The example runs the pipelined
//! application under Cohmeleon and prints the per-invocation coherence
//! decisions, showing how the learned policy adapts along the chain and
//! across workload sizes.
//!
//! Run with: `cargo run --release --example computer_vision`

use cohmeleon_repro::core::policy::CohmeleonPolicy;
use cohmeleon_repro::core::qlearn::LearningSchedule;
use cohmeleon_repro::core::reward::RewardWeights;
use cohmeleon_repro::soc::config::soc6;
use cohmeleon_repro::workloads::case_studies::soc6_app;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_repro::workloads::runner::run_protocol;

fn main() {
    let config = soc6();
    println!("SoC6 — computer-vision case study: 3 × (night-vision → autoencoder → MLP)\n");

    let train_app = generate_app(&config, &GeneratorParams::default(), 21);
    let test_app = soc6_app(&config, 2);

    let mut cohmeleon = CohmeleonPolicy::new(
        RewardWeights::paper_default(),
        LearningSchedule::paper_default(10),
        9,
    );
    let result = run_protocol(&config, &train_app, &test_app, &mut cohmeleon, 10, 9);

    for phase in &result.phases {
        println!(
            "phase {:<12} {:>12} cycles, {:>8} off-chip accesses",
            phase.name, phase.duration, phase.offchip
        );
        for rec in &phase.invocations {
            let name = &config.accels[rec.accel.0 as usize].spec.profile.name;
            println!(
                "    {:<14} {:>7} KiB  -> {:<12} ({} cycles)",
                name,
                rec.footprint_bytes / 1024,
                rec.mode.to_string(),
                rec.measurement.total_cycles
            );
        }
    }

    // Decision mix across the whole app.
    let mut mix = [0usize; 4];
    for rec in result.invocations() {
        mix[rec.mode.index()] += 1;
    }
    println!(
        "\ndecision mix: non-coh {} | llc-coh {} | coh-dma {} | full-coh {}",
        mix[0], mix[1], mix[2], mix[3]
    );
}
