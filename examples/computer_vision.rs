//! The SoC6 case study: a computer-vision classification pipeline.
//!
//! SoC6 hosts three copies of the night-vision → autoencoder → MLP
//! pipeline (undarken, denoise, classify). The example runs the pipelined
//! application under Cohmeleon as a one-cell experiment grid with a
//! *streaming observer* — the `ResultSink` prints each cell's
//! per-invocation coherence decisions the moment the cell completes,
//! showing how the learned policy adapts along the chain and across
//! workload sizes.
//!
//! Run with: `cargo run --release --example computer_vision`

use cohmeleon_repro::exp::{CellResult, Experiment, PolicyKind, Serial};
use cohmeleon_repro::soc::config::soc6;
use cohmeleon_repro::workloads::case_studies::soc6_app;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};

fn main() {
    let config = soc6();
    println!("SoC6 — computer-vision case study: 3 × (night-vision → autoencoder → MLP)\n");

    let train_app = generate_app(&config, &GeneratorParams::default(), 21);
    let test_app = soc6_app(&config, 2);

    let grid = Experiment::train_test(config.clone(), train_app, test_app)
        .policy_kinds([PolicyKind::Cohmeleon])
        .seed(9)
        .train_iterations(10)
        .build()
        .expect("experiment axes are non-empty");

    // Stream results through an observer instead of collecting: the
    // closure is a `ResultSink` and fires once per completed cell.
    let mut mix = [0usize; 4];
    grid.execute(&Serial, &mut |cell: CellResult| {
        for phase in &cell.result.phases {
            println!(
                "phase {:<12} {:>12} cycles, {:>8} off-chip accesses",
                phase.name, phase.duration, phase.offchip
            );
            for rec in &phase.invocations {
                let name = &config.accels[rec.accel.0 as usize].spec.profile.name;
                println!(
                    "    {:<14} {:>7} KiB  -> {:<12} ({} cycles)",
                    name,
                    rec.footprint_bytes / 1024,
                    rec.mode.to_string(),
                    rec.measurement.total_cycles
                );
            }
        }
        for rec in cell.result.invocations() {
            mix[rec.mode.index()] += 1;
        }
    });

    // Decision mix across the whole app.
    println!(
        "\ndecision mix: non-coh {} | llc-coh {} | coh-dma {} | full-coh {}",
        mix[0], mix[1], mix[2], mix[3]
    );
}
