//! Characterising a custom accelerator with the traffic generator.
//!
//! The paper's traffic generator is configurable in exactly the properties
//! that define an accelerator's view from the SoC: access pattern, DMA
//! burst length, compute duration, data reuse, read-to-write ratio, and
//! in-place storage. This example sweeps one custom profile across the
//! four coherence modes and three workload sizes — the same methodology as
//! the paper's Figure 2 — as a 3-scenario × 4-policy evaluation-only grid,
//! to find out where each mode wins for *your* accelerator.
//!
//! Run with: `cargo run --release --example traffic_generator`

use cohmeleon_repro::accel::{AccelProfile, AccelSpec};
use cohmeleon_repro::core::{AccelInstanceId, AccelKindId, CoherenceMode};
use cohmeleon_repro::exp::{Experiment, PolicyKind, Protocol, Scenario, WorkStealing};
use cohmeleon_repro::soc::config::motivation_isolation_soc;
use cohmeleon_repro::soc::{AppSpec, PhaseSpec, ThreadSpec};

fn main() {
    // A hypothetical sparse-graph accelerator: short irregular bursts over
    // 30% of the dataset, some reuse, few writes, moderate compute.
    let profile = AccelProfile::streaming("my-graph-accel", 4, 28, 1.8, 0.4)
        .with_irregular(0.3);
    println!("profile: {profile:#?}\n");

    // Drop it into the motivation SoC in place of accelerator tile 0.
    let mut config = motivation_isolation_soc();
    config.accels[0] = cohmeleon_repro::soc::AccelTile {
        spec: AccelSpec {
            kind: AccelKindId(900),
            profile,
        },
        has_private_cache: true,
    };

    // One scenario per workload size; the four fixed policies are the
    // mode axis. Evaluation-only: no training, raw seed per cell.
    let sizes = [
        ("Small", 16 * 1024u64),
        ("Medium", 256 * 1024),
        ("Large", 4 * 1024 * 1024),
    ];
    let scenarios = sizes.map(|(label, bytes)| {
        let app = AppSpec {
            name: "sweep".into(),
            phases: vec![PhaseSpec {
                name: label.into(),
                threads: vec![ThreadSpec {
                    dataset_bytes: bytes,
                    chain: vec![AccelInstanceId(0)],
                    loops: 5,
                    check_output: true,
                }],
            }],
        };
        Scenario::evaluate(config.clone(), app).label(label)
    });
    let grid = Experiment::new()
        .protocol(Protocol::EvaluateOnly)
        .scenarios(scenarios)
        .policy_kinds(PolicyKind::FIXED[..4].iter().copied())
        .seed(3)
        .build()
        .expect("experiment axes are non-empty");
    let results = grid.collect(&WorkStealing::new());

    println!(
        "{:<10} {:<14} {:>12} {:>10} {:>10}",
        "size", "mode", "cycles", "norm-time", "off-chip"
    );
    for (s, (label, _)) in sizes.iter().enumerate() {
        let mut base = None;
        for (p, mode) in CoherenceMode::ALL.into_iter().enumerate() {
            let invs = &results.cell(s, p, 0).result.phases[0].invocations;
            let mean: u64 = invs
                .iter()
                .map(|r| r.measurement.total_cycles)
                .sum::<u64>()
                / invs.len() as u64;
            let mem: f64 = invs
                .iter()
                .map(|r| r.measurement.offchip_accesses)
                .sum::<f64>()
                / invs.len() as f64;
            let base_val = *base.get_or_insert(mean as f64);
            println!(
                "{:<10} {:<14} {:>12} {:>10.2} {:>10.0}",
                label,
                mode.to_string(),
                mean,
                mean as f64 / base_val,
                mem
            );
        }
        println!();
    }
    println!("(norm-time is relative to non-coherent DMA at the same size)");
}
