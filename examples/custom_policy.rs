//! Plugging a user-defined coherence policy into the framework.
//!
//! The `Policy` trait is the extension point of the Cohmeleon framework:
//! anything that can map a `SystemSnapshot` to a `CoherenceMode` can drive
//! the SoC. This example implements a simple "footprint threshold" policy
//! (cache modes below a cut-off, non-coherent above) and races it against
//! Cohmeleon on SoC2.
//!
//! Run with: `cargo run --release --example custom_policy`

use cohmeleon_repro::core::policy::{CohmeleonPolicy, Decision, Policy};
use cohmeleon_repro::core::qlearn::LearningSchedule;
use cohmeleon_repro::core::reward::RewardWeights;
use cohmeleon_repro::core::{
    AccelInstanceId, CoherenceMode, ModeSet, State, SystemSnapshot,
};
use cohmeleon_repro::soc::config::soc2;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_repro::workloads::runner::{run_protocol, summarize};

/// Below `threshold` bytes choose coherent DMA, above it non-coherent DMA —
/// a two-rule heuristic someone might write on a whiteboard.
struct ThresholdPolicy {
    threshold: u64,
}

impl Policy for ThresholdPolicy {
    fn name(&self) -> String {
        format!("threshold-{}k", self.threshold / 1024)
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        _accel: AccelInstanceId,
    ) -> Decision {
        let preferred = if snapshot.target_footprint <= self.threshold {
            CoherenceMode::CohDma
        } else {
            CoherenceMode::NonCohDma
        };
        let mode = if available.contains(preferred) {
            preferred
        } else {
            available.iter().next().expect("at least one mode")
        };
        Decision {
            mode,
            state: State::from_snapshot(snapshot),
        }
    }
}

fn main() {
    let config = soc2();
    let train_app = generate_app(&config, &GeneratorParams::default(), 31);
    let test_app = generate_app(&config, &GeneratorParams::default(), 32);

    // Baseline: the custom threshold policy (no training needed).
    let mut custom = ThresholdPolicy {
        threshold: config.llc_slice_bytes,
    };
    let custom_result = run_protocol(&config, &train_app, &test_app, &mut custom, 0, 3);

    // Challenger: Cohmeleon, trained online.
    let mut cohmeleon = CohmeleonPolicy::new(
        RewardWeights::paper_default(),
        LearningSchedule::paper_default(10),
        3,
    );
    let cohmeleon_result = run_protocol(&config, &train_app, &test_app, &mut cohmeleon, 10, 3);

    println!(
        "{:<16} {:>14} cycles {:>12} off-chip",
        custom_result.policy,
        custom_result.total_duration(),
        custom_result.total_offchip()
    );
    println!(
        "{:<16} {:>14} cycles {:>12} off-chip",
        cohmeleon_result.policy,
        cohmeleon_result.total_duration(),
        cohmeleon_result.total_offchip()
    );

    let outcome = summarize(cohmeleon_result, &custom_result);
    println!(
        "\ncohmeleon vs {}: geo-time {:.2}, geo-mem {:.2} (lower favours cohmeleon)",
        custom_result.policy, outcome.geo_time, outcome.geo_mem
    );
}
