//! Plugging user-defined coherence policies into the framework.
//!
//! Two extension points are shown racing Cohmeleon on SoC2 inside one
//! experiment grid:
//!
//! * the `Policy` trait — anything that can map a `SystemSnapshot` to a
//!   `CoherenceMode` can drive the SoC (a "footprint threshold" heuristic
//!   here), and
//! * the agent builder — a learning agent recomposed from non-default
//!   parts (coarse state space, softmax exploration) without writing a
//!   policy by hand.
//!
//! Run with: `cargo run --release --example custom_policy`

use cohmeleon_repro::core::agent::AgentBuilder;
use cohmeleon_repro::core::explore::Softmax;
use cohmeleon_repro::core::policy::{Decision, Policy};
use cohmeleon_repro::core::space::CoarseSpace;
use cohmeleon_repro::core::{
    AccelInstanceId, CoherenceMode, ModeSet, State, SystemSnapshot,
};
use cohmeleon_repro::exp::{Experiment, PolicyKind, PolicySpec, WorkStealing};
use cohmeleon_repro::soc::config::soc2;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};

/// Below `threshold` bytes choose coherent DMA, above it non-coherent DMA —
/// a two-rule heuristic someone might write on a whiteboard.
struct ThresholdPolicy {
    threshold: u64,
}

impl Policy for ThresholdPolicy {
    fn name(&self) -> String {
        format!("threshold-{}k", self.threshold / 1024)
    }

    fn decide(
        &mut self,
        snapshot: &SystemSnapshot,
        available: ModeSet,
        _accel: AccelInstanceId,
    ) -> Decision {
        let preferred = if snapshot.target_footprint <= self.threshold {
            CoherenceMode::CohDma
        } else {
            CoherenceMode::NonCohDma
        };
        let mode = if available.contains(preferred) {
            preferred
        } else {
            available.iter().next().expect("at least one mode")
        };
        Decision::new(mode, State::from_snapshot(snapshot))
    }
}

fn main() {
    let config = soc2();
    let train_app = generate_app(&config, &GeneratorParams::default(), 31);
    let test_app = generate_app(&config, &GeneratorParams::default(), 32);

    // Baseline: the custom threshold policy (no training — the grid only
    // trains policies that report themselves as learning). Challenger:
    // Cohmeleon, trained online for 10 iterations.
    let threshold = config.llc_slice_bytes;
    let grid = Experiment::train_test(config, train_app, test_app)
        .policy(PolicySpec::custom("threshold", move |_, _, _| {
            Box::new(ThresholdPolicy { threshold })
        }))
        .policy(PolicySpec::kind(PolicyKind::Cohmeleon))
        // A recomposed learning agent: coarse 27-state sensing + softmax
        // exploration, otherwise the paper's reward and update rule.
        .policy(PolicySpec::custom("coarse-softmax", |_, iters, seed| {
            Box::new(
                AgentBuilder::paper(iters, seed)
                    .state_space(CoarseSpace)
                    .exploration(Softmax::default_schedule(iters))
                    .label("coarse-softmax")
                    .build(),
            )
        }))
        .seed(3)
        .train_iterations(10)
        .build()
        .expect("experiment axes are non-empty");
    let results = grid.collect(&WorkStealing::new());

    for cell in results.iter() {
        println!(
            "{:<16} {:>14} cycles {:>12} off-chip",
            cell.result.policy,
            cell.result.total_duration(),
            cell.result.total_offchip()
        );
    }

    // Normalize Cohmeleon against the custom baseline (policy 0).
    let outcomes = results.outcomes_against(0);
    let (_, cohmeleon) = &outcomes[1];
    println!(
        "\ncohmeleon vs {}: geo-time {:.2}, geo-mem {:.2} (lower favours cohmeleon)",
        results.cell(0, 0, 0).result.policy,
        cohmeleon.geo_time,
        cohmeleon.geo_mem
    );
}
