//! The SoC5 case study: collaborative autonomous vehicles.
//!
//! SoC5 embeds two FFT and two Viterbi accelerators for vehicle-to-vehicle
//! (V2V) communication, plus two Conv-2D and two GEMM accelerators for CNN
//! inference (object recognition). The application runs V2V encode/decode
//! chains alongside CNN inference pipelines at several workload sizes, and
//! compares every coherence policy — reproducing one panel of the paper's
//! Figure 9.
//!
//! Run with: `cargo run --release --example autonomous_driving`

use cohmeleon_repro::soc::config::soc5;
use cohmeleon_repro::workloads::case_studies::soc5_app;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_repro::workloads::runner::{run_protocol, summarize};

use cohmeleon_repro::core::manual::ManualThresholds;
use cohmeleon_repro::core::policy::{
    CohmeleonPolicy, FixedPolicy, ManualPolicy, Policy, RandomPolicy,
};
use cohmeleon_repro::core::qlearn::LearningSchedule;
use cohmeleon_repro::core::reward::RewardWeights;
use cohmeleon_repro::core::CoherenceMode;

fn main() {
    let config = soc5();
    println!("SoC5 — autonomous-driving case study");
    for (i, tile) in config.accels.iter().enumerate() {
        println!("  accel {i}: {}", tile.spec.profile.name);
    }

    // Training uses a randomly-configured evaluation app on this SoC
    // (as in the paper); the V2V+CNN application is the test workload.
    let train_app = generate_app(&config, &GeneratorParams::default(), 11);
    let test_app = soc5_app(&config, 2);

    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(FixedPolicy::new(CoherenceMode::NonCohDma)),
        Box::new(FixedPolicy::new(CoherenceMode::CohDma)),
        Box::new(RandomPolicy::new(5)),
        Box::new(ManualPolicy::new(ManualThresholds::for_arch(
            &config.arch_params(),
        ))),
        Box::new(CohmeleonPolicy::new(
            RewardWeights::paper_default(),
            LearningSchedule::paper_default(10),
            5,
        )),
    ];

    let baseline = run_protocol(
        &config,
        &train_app,
        &test_app,
        policies[0].as_mut(),
        10,
        5,
    );
    println!("\n{:<20} {:>10} {:>10}", "policy", "geo-time", "geo-mem");
    println!("{:<20} {:>10.2} {:>10.2}", baseline.policy, 1.0, 1.0);
    for policy in policies.iter_mut().skip(1) {
        let result = run_protocol(&config, &train_app, &test_app, policy.as_mut(), 10, 5);
        let outcome = summarize(result, &baseline);
        println!(
            "{:<20} {:>10.2} {:>10.2}",
            outcome.policy, outcome.geo_time, outcome.geo_mem
        );
    }
    println!("\n(normalized to fixed non-coherent DMA; lower is better)");
}
