//! The SoC5 case study: collaborative autonomous vehicles.
//!
//! SoC5 embeds two FFT and two Viterbi accelerators for vehicle-to-vehicle
//! (V2V) communication, plus two Conv-2D and two GEMM accelerators for CNN
//! inference (object recognition). The application runs V2V encode/decode
//! chains alongside CNN inference pipelines at several workload sizes, and
//! compares coherence policies — reproducing one panel of the paper's
//! Figure 9 as a five-policy experiment grid.
//!
//! Run with: `cargo run --release --example autonomous_driving`

use cohmeleon_repro::exp::{Experiment, PolicyKind, WorkStealing};
use cohmeleon_repro::soc::config::soc5;
use cohmeleon_repro::workloads::case_studies::soc5_app;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};

fn main() {
    let config = soc5();
    println!("SoC5 — autonomous-driving case study");
    for (i, tile) in config.accels.iter().enumerate() {
        println!("  accel {i}: {}", tile.spec.profile.name);
    }

    // Training uses a randomly-configured evaluation app on this SoC
    // (as in the paper); the V2V+CNN application is the test workload.
    let train_app = generate_app(&config, &GeneratorParams::default(), 11);
    let test_app = soc5_app(&config, 2);

    let grid = Experiment::train_test(config, train_app, test_app)
        .policy_kinds([
            PolicyKind::FixedNonCoh,
            PolicyKind::FixedCohDma,
            PolicyKind::Random,
            PolicyKind::Manual,
            PolicyKind::Cohmeleon,
        ])
        .seed(5)
        .train_iterations(10)
        .build()
        .expect("experiment axes are non-empty");

    // All five policies run in parallel on the work-stealing executor;
    // outcomes are normalized against fixed non-coherent DMA (policy 0).
    let outcomes = grid
        .collect(&WorkStealing::new())
        .into_outcomes_against(0);

    println!("\n{:<20} {:>10} {:>10}", "policy", "geo-time", "geo-mem");
    for (_, outcome) in &outcomes {
        println!(
            "{:<20} {:>10.2} {:>10.2}",
            outcome.policy, outcome.geo_time, outcome.geo_mem
        );
    }
    println!("\n(normalized to fixed non-coherent DMA; lower is better)");
}
