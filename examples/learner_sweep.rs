//! Sweeping the learner design space as a grid axis.
//!
//! The agent redesign made the learning subsystem composable (state space
//! × exploration × value store × update rule); a `LearnerSpec` names one
//! composition as plain data, and `Experiment::learners` puts a whole
//! sweep of them on the policy axis — here every exploration strategy
//! over two state spaces, raced on SoC1 and streamed to a JSONL record
//! as cells complete.
//!
//! Run with: `cargo run --release --example learner_sweep`

use cohmeleon_repro::exp::{
    AgentScope, Experiment, JsonlSink, LearnerSpec, StateSpaceKind, StoreKind, UpdateKind,
    WeightPreset, WorkStealing,
};
use cohmeleon_repro::soc::config::soc1;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};

fn main() {
    let config = soc1();
    // The coverage preset visits a far wider state set than `quick` —
    // the right workload for comparing discretizations.
    let params = GeneratorParams::coverage();
    let train_app = generate_app(&config, &params, 21);
    let test_app = generate_app(&config, &params, 22);

    // Every exploration strategy × {table3, extended} over a sparse store,
    // with the paper composition (exactly `CohmeleonPolicy`) as cell 0.
    let mut specs = vec![LearnerSpec::paper()];
    specs.extend(
        LearnerSpec::grid(
            &[StateSpaceKind::Table3, StateSpaceKind::Extended],
            &cohmeleon_repro::exp::ExplorationKind::ALL,
            &[UpdateKind::Blend],
            StoreKind::Sparse,
        )
        .into_iter()
        .filter(|s| {
            *s != LearnerSpec {
                store: StoreKind::Sparse,
                ..LearnerSpec::paper()
            }
        }),
    );
    // The orchestration axes ride the same grid: the paper composition
    // with one agent per accelerator kind, and with a memory-leaning
    // reward — each its own resumable, shardable cell.
    specs.push(LearnerSpec::paper().with_scope(AgentScope::PerKind));
    specs.push(LearnerSpec::paper().with_weights(WeightPreset::MemHeavy));

    let grid = Experiment::train_test(config, train_app, test_app)
        .learners(specs.iter().copied())
        .seed(5)
        .train_iterations(8)
        .build()
        .expect("experiment axes are non-empty");

    // Stream a durable record while the sweep runs, then reload it.
    let mut sink = JsonlSink::new(Vec::new());
    grid.execute(&WorkStealing::new(), &mut sink);
    let jsonl = String::from_utf8(sink.into_inner()).unwrap();
    let records = cohmeleon_repro::exp::read_jsonl(&jsonl).expect("own JSONL parses");

    println!(
        "{:<40} {:>14} {:>12} {:>8}",
        "learner", "cycles", "off-chip", "vs paper"
    );
    let baseline = records
        .iter()
        .find(|r| r.policy_index == 0)
        .expect("baseline cell present")
        .total_cycles as f64;
    let mut sorted = records.clone();
    sorted.sort_by_key(|r| r.policy_index);
    for r in &sorted {
        println!(
            "{:<40} {:>14} {:>12} {:>7.2}x",
            r.policy,
            r.total_cycles,
            r.total_offchip,
            r.total_cycles as f64 / baseline
        );
    }
    println!("\n({} cells; the full 18-cell sweep is `cargo run -p cohmeleon-bench --bin learner_ablation`)", records.len());
}
