//! Quickstart: build a simulated SoC, train Cohmeleon online, and compare
//! it against the paper's baseline policies on a small workload mix —
//! one `Experiment` grid, run on the work-stealing executor.
//!
//! Run with: `cargo run --release --example quickstart`

use cohmeleon_repro::exp::{Experiment, PolicyKind, WorkStealing};
use cohmeleon_repro::soc::config::soc1;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};

fn main() {
    // 1. Pick a SoC from Table 4 of the paper: SoC1 has 7 accelerators,
    //    2 CPUs, 4 memory tiles with 256 KiB LLC partitions.
    let config = soc1();
    println!("SoC: {} ({} accelerators)", config.name, config.accels.len());

    // 2. Generate a training and a test instance of the evaluation
    //    application (different seeds = different instances).
    let train_app = generate_app(&config, &GeneratorParams::default(), 1);
    let test_app = generate_app(&config, &GeneratorParams::default(), 2);

    // 3. Compose the experiment: one scenario, three policies, one seed.
    //    Only Cohmeleon trains (10 iterations); the fixed baseline and the
    //    manual heuristic skip training.
    let grid = Experiment::train_test(config, train_app, test_app)
        .policy_kinds([
            PolicyKind::FixedNonCoh,
            PolicyKind::Manual,
            PolicyKind::Cohmeleon,
        ])
        .seed(42)
        .train_iterations(10)
        .build()
        .expect("experiment axes are non-empty");

    // 4. Run all three cells in parallel. Every cell gets a fresh SoC and
    //    its own deterministic seed stream, so the results are bit-identical
    //    to a serial run.
    let results = grid.collect(&WorkStealing::new());

    println!("\n{:<22} {:>14} {:>14}", "policy", "cycles", "off-chip");
    for cell in results.iter() {
        println!(
            "{:<22} {:>14} {:>14}",
            cell.result.policy,
            cell.result.total_duration(),
            cell.result.total_offchip()
        );
    }

    let fixed = &results.cell(0, 0, 0).result;
    let cohmeleon = &results.cell(0, 2, 0).result;
    let speedup = fixed.total_duration() as f64 / cohmeleon.total_duration() as f64;
    let mem_saving =
        1.0 - cohmeleon.total_offchip() as f64 / fixed.total_offchip().max(1) as f64;
    println!(
        "\ncohmeleon vs fixed non-coherent DMA: {speedup:.2}x speedup, {:.0}% fewer off-chip accesses",
        mem_saving * 100.0
    );
}
