//! Quickstart: build a simulated SoC, train Cohmeleon online, and compare
//! it against the paper's baseline policies on a small workload mix.
//!
//! Run with: `cargo run --release --example quickstart`

use cohmeleon_repro::core::policy::{CohmeleonPolicy, FixedPolicy, ManualPolicy};
use cohmeleon_repro::core::manual::ManualThresholds;
use cohmeleon_repro::core::qlearn::LearningSchedule;
use cohmeleon_repro::core::reward::RewardWeights;
use cohmeleon_repro::core::CoherenceMode;
use cohmeleon_repro::soc::config::soc1;
use cohmeleon_repro::workloads::generator::{generate_app, GeneratorParams};
use cohmeleon_repro::workloads::runner::{evaluate_policy, run_protocol};

fn main() {
    // 1. Pick a SoC from Table 4 of the paper: SoC1 has 7 accelerators,
    //    2 CPUs, 4 memory tiles with 256 KiB LLC partitions.
    let config = soc1();
    println!("SoC: {} ({} accelerators)", config.name, config.accels.len());

    // 2. Generate a training and a test instance of the evaluation
    //    application (different seeds = different instances).
    let train_app = generate_app(&config, &GeneratorParams::default(), 1);
    let test_app = generate_app(&config, &GeneratorParams::default(), 2);

    // 3. Train Cohmeleon online for 10 iterations, then freeze and test.
    let mut cohmeleon = CohmeleonPolicy::new(
        RewardWeights::paper_default(),
        LearningSchedule::paper_default(10),
        42,
    );
    let cohmeleon_result = run_protocol(&config, &train_app, &test_app, &mut cohmeleon, 10, 42);

    // 4. Compare against a design-time baseline and the manual heuristic.
    let mut fixed = FixedPolicy::new(CoherenceMode::NonCohDma);
    let fixed_result = evaluate_policy(&config, &test_app, &mut fixed, 42);
    let mut manual = ManualPolicy::new(ManualThresholds::for_arch(&config.arch_params()));
    let manual_result = evaluate_policy(&config, &test_app, &mut manual, 42);

    println!("\n{:<22} {:>14} {:>14}", "policy", "cycles", "off-chip");
    for result in [&fixed_result, &manual_result, &cohmeleon_result] {
        println!(
            "{:<22} {:>14} {:>14}",
            result.policy,
            result.total_duration(),
            result.total_offchip()
        );
    }

    let speedup = fixed_result.total_duration() as f64 / cohmeleon_result.total_duration() as f64;
    let mem_saving = 1.0
        - cohmeleon_result.total_offchip() as f64 / fixed_result.total_offchip().max(1) as f64;
    println!(
        "\ncohmeleon vs fixed non-coherent DMA: {speedup:.2}x speedup, {:.0}% fewer off-chip accesses",
        mem_saving * 100.0
    );
}
